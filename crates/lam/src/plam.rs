//! PLAM — multi-level parallel LAM (§4.4.4).
//!
//! Partitions are independent after localization, so they are distributed
//! across worker threads (the paper's per-core level; its cross-machine
//! level maps to the same structure). Each worker mines its partitions in
//! a private mini-database and returns rewritten transactions plus local
//! patterns; the main thread merges them, remapping local pointer ids into
//! the global code table. Static balancing assigns partitions to workers
//! by accumulated cell count, mirroring the paper's best-effort static
//! scheme (whose imbalance on near-clique structures it discusses).

use crate::db::{Pattern, TransactionDb};
use crate::localize::{localize, LocalizeConfig};
use crate::miner::{mine_partition, LamConfig, LamResult};
use std::time::Instant;

/// High bit marking a thread-local pattern reference during the merge.
const LOCAL_MARK: u32 = 0x8000_0000;

/// Result of one worker over one partition group.
struct WorkerOutput {
    /// `(global transaction id, rewritten items)`; local pattern pointers
    /// are encoded as `LOCAL_MARK | local_index`.
    rewritten: Vec<(u32, Vec<u32>)>,
    /// Local patterns in creation order (items may carry `LOCAL_MARK`).
    patterns: Vec<Pattern>,
}

/// Runs PLAM over the database with `threads` workers.
///
/// With `threads == 1` this is behaviorally equivalent to serial LAM
/// modulo partition-visit order.
pub fn plam_run(db: &mut TransactionDb, cfg: &LamConfig, threads: usize) -> LamResult {
    let threads = threads.max(1);
    let mut ratio_per_pass = Vec::with_capacity(cfg.passes as usize);
    let mut localize_seconds = 0.0;
    let mut mine_seconds = 0.0;

    for pass in 0..cfg.passes {
        let t0 = Instant::now();
        let lcfg = LocalizeConfig {
            seed: cfg
                .localize
                .seed
                .wrapping_add((pass as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..cfg.localize
        };
        let parts = localize(db.transactions(), &lcfg);
        localize_seconds += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        // Static balance: assign each group to the currently lightest
        // worker (by cell count).
        let mut buckets: Vec<Vec<&[u32]>> = vec![Vec::new(); threads];
        let mut loads = vec![0u64; threads];
        for group in &parts.groups {
            let cells: u64 = group
                .iter()
                .map(|&id| db.transaction(id as usize).len() as u64)
                .sum();
            let w = (0..threads)
                .min_by_key(|&w| loads[w])
                .expect("at least one worker");
            loads[w] += cells;
            buckets[w].push(group);
        }

        let db_ref: &TransactionDb = db;
        let utility = cfg.utility;
        let outputs: Vec<Vec<WorkerOutput>> = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        bucket
                            .iter()
                            .map(|group| mine_group_local(db_ref, group, utility, pass))
                            .collect::<Vec<WorkerOutput>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        // Deterministic merge in worker/bucket order.
        for worker in outputs {
            for out in worker {
                merge_output(db, out);
            }
        }
        mine_seconds += t1.elapsed().as_secs_f64();
        ratio_per_pass.push(db.compression_ratio());
    }

    LamResult {
        final_ratio: db.compression_ratio(),
        patterns: db.patterns().len(),
        ratio_per_pass,
        localize_seconds,
        mine_seconds,
    }
}

/// Mines one partition in a private mini-database.
fn mine_group_local(
    db: &TransactionDb,
    group: &[u32],
    utility: crate::utility::Utility,
    pass: u32,
) -> WorkerOutput {
    // Local db over just this group's transactions (ids 0..len).
    let txs: Vec<Vec<u32>> = group
        .iter()
        .map(|&id| db.transaction(id as usize).to_vec())
        .collect();
    let mut local = TransactionDb::new(txs);
    let local_base = local.pattern_base();
    let local_ids: Vec<u32> = (0..group.len() as u32).collect();
    mine_partition(&mut local, &local_ids, utility, pass);

    // Encode local pointers with the merge mark.
    let encode = |items: &[u32]| -> Vec<u32> {
        items
            .iter()
            .map(|&it| {
                if it >= local_base {
                    LOCAL_MARK | (it - local_base)
                } else {
                    it
                }
            })
            .collect()
    };
    let rewritten = group
        .iter()
        .enumerate()
        .map(|(li, &gid)| (gid, encode(local.transaction(li))))
        .collect();
    let patterns = local
        .patterns()
        .iter()
        .map(|p| Pattern {
            items: encode(&p.items),
            occurrences: p.occurrences,
            pass: p.pass,
        })
        .collect();
    WorkerOutput {
        rewritten,
        patterns,
    }
}

/// Folds one worker output into the global database, remapping marks.
fn merge_output(db: &mut TransactionDb, out: WorkerOutput) {
    if out.patterns.is_empty() {
        return; // nothing was mined; transactions unchanged
    }
    let offset = db.next_pointer_id();
    let remap = |items: Vec<u32>| -> Vec<u32> {
        items
            .into_iter()
            .map(|it| {
                if it & LOCAL_MARK != 0 {
                    offset + (it & !LOCAL_MARK)
                } else {
                    it
                }
            })
            .collect()
    };
    for p in out.patterns {
        db.append_pattern(Pattern {
            items: {
                let mut v = remap(p.items);
                v.sort_unstable();
                v
            },
            occurrences: p.occurrences,
            pass: p.pass,
        });
    }
    for (gid, items) in out.rewritten {
        db.replace_transaction(gid as usize, remap(items));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::Lam;
    use plasma_data::datasets::transactions::QuestSpec;

    fn quest_db(n: usize, seed: u64) -> TransactionDb {
        TransactionDb::new(QuestSpec::new("q", n, 250).generate(seed))
    }

    #[test]
    fn plam_matches_serial_compression_closely() {
        let mut serial = quest_db(600, 3);
        let serial_result = Lam::with_passes(3).run(&mut serial);
        let mut parallel = quest_db(600, 3);
        let cfg = LamConfig {
            passes: 3,
            ..LamConfig::default()
        };
        let plam_result = plam_run(&mut parallel, &cfg, 4);
        let rel =
            (serial_result.final_ratio - plam_result.final_ratio).abs() / serial_result.final_ratio;
        assert!(
            rel < 0.1,
            "serial {} vs plam {}",
            serial_result.final_ratio,
            plam_result.final_ratio
        );
    }

    #[test]
    fn plam_is_lossless() {
        let txs = QuestSpec::new("q", 400, 200).generate(11);
        let originals = txs.clone();
        let mut db = TransactionDb::new(txs);
        let cfg = LamConfig {
            passes: 3,
            ..LamConfig::default()
        };
        plam_run(&mut db, &cfg, 3);
        for (i, orig) in originals.iter().enumerate() {
            let mut o = orig.clone();
            o.sort_unstable();
            o.dedup();
            assert_eq!(db.expand(i), o, "transaction {i} corrupted by merge");
        }
    }

    #[test]
    fn single_thread_plam_works() {
        let mut db = quest_db(200, 7);
        let cfg = LamConfig {
            passes: 2,
            ..LamConfig::default()
        };
        let r = plam_run(&mut db, &cfg, 1);
        assert!(r.final_ratio >= 1.0);
    }

    #[test]
    fn plam_compresses_like_lam_on_categorical() {
        use plasma_data::datasets::transactions::CategoricalSpec;
        let (txs, _) = CategoricalSpec::new("c", 500, 12).generate(5);
        let mut db = TransactionDb::new(txs);
        let cfg = LamConfig {
            passes: 5,
            ..LamConfig::default()
        };
        let r = plam_run(&mut db, &cfg, 2);
        assert!(r.final_ratio > 1.1, "ratio {}", r.final_ratio);
        assert_eq!(r.ratio_per_pass.len(), 5);
    }
}
