//! Pattern-set introspection: what did LAM actually find?
//!
//! Backs Fig. 4.13 (pattern length vs cumulative compression) and the
//! qualitative claims about long patterns ("longer patterns are also
//! often more interesting — for instance in the web graph, as they often
//! represent link spam").

use crate::db::TransactionDb;

/// One row of the length-vs-compression breakdown.
#[derive(Debug, Clone, Copy)]
pub struct LengthBucket {
    /// Upper bound (inclusive) on pattern length for this bucket.
    pub max_len: usize,
    /// Patterns in this bucket.
    pub patterns: usize,
    /// Cells saved by patterns with length ≤ `max_len` (cumulative).
    pub cumulative_saved: i64,
    /// Share of all saved cells (cumulative, 0–1).
    pub cumulative_share: f64,
}

/// Cumulative compression contribution by pattern length, on doubling
/// buckets (≤2, ≤4, ≤8, …).
pub fn length_breakdown(db: &TransactionDb) -> Vec<LengthBucket> {
    let mut by_len: Vec<(usize, i64)> = db
        .patterns()
        .iter()
        .map(|p| (p.items.len(), p.saved_cells().max(0)))
        .collect();
    by_len.sort_unstable_by_key(|&(l, _)| l);
    let total: i64 = by_len.iter().map(|&(_, s)| s).sum();
    let max_len = by_len.last().map_or(0, |&(l, _)| l);

    let mut out = Vec::new();
    let mut acc_saved = 0i64;
    let mut acc_patterns = 0usize;
    let mut bound = 2usize;
    let mut iter = by_len.iter().peekable();
    while bound / 2 <= max_len && bound < usize::MAX / 2 {
        while let Some(&&(l, s)) = iter.peek() {
            if l <= bound {
                acc_saved += s;
                acc_patterns += 1;
                iter.next();
            } else {
                break;
            }
        }
        out.push(LengthBucket {
            max_len: bound,
            patterns: acc_patterns,
            cumulative_saved: acc_saved,
            cumulative_share: if total > 0 {
                acc_saved as f64 / total as f64
            } else {
                0.0
            },
        });
        if bound >= max_len {
            break;
        }
        bound *= 2;
    }
    out
}

/// The `k` patterns saving the most cells, expanded to original items,
/// best first. Each entry is `(items, occurrences, saved_cells)`.
pub fn top_patterns(db: &TransactionDb, k: usize) -> Vec<(Vec<u32>, u32, i64)> {
    let mut scored: Vec<(i64, usize)> = db
        .patterns()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.saved_cells(), i))
        .collect();
    scored.sort_unstable_by_key(|&(s, _)| std::cmp::Reverse(s));
    scored
        .into_iter()
        .take(k)
        .map(|(saved, i)| {
            let p = &db.patterns()[i];
            (expand_items(db, &p.items), p.occurrences, saved)
        })
        .collect()
}

/// Expands pointer items in a pattern back to original items.
pub fn expand_items(db: &TransactionDb, items: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut stack: Vec<u32> = items.to_vec();
    while let Some(it) = stack.pop() {
        if it >= db.pattern_base() {
            stack.extend_from_slice(&db.patterns()[(it - db.pattern_base()) as usize].items);
        } else {
            out.push(it);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::Lam;
    use plasma_data::datasets::transactions::QuestSpec;

    fn mined_db() -> TransactionDb {
        let txs = QuestSpec::new("t", 500, 250).generate(3);
        let mut db = TransactionDb::new(txs);
        Lam::with_passes(3).run(&mut db);
        db
    }

    #[test]
    fn breakdown_is_cumulative_and_ends_at_one() {
        let db = mined_db();
        let rows = length_breakdown(&db);
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[1].cumulative_saved >= w[0].cumulative_saved);
            assert!(w[1].patterns >= w[0].patterns);
        }
        let last = rows.last().expect("non-empty");
        assert!((last.cumulative_share - 1.0).abs() < 1e-9);
        assert_eq!(last.patterns, db.patterns().len());
    }

    #[test]
    fn top_patterns_sorted_by_savings() {
        let db = mined_db();
        let top = top_patterns(&db, 5);
        assert!(!top.is_empty());
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        // Expanded items contain no pointer ids.
        for (items, occ, _) in &top {
            assert!(items.iter().all(|&it| it < db.pattern_base()));
            assert!(*occ >= 2);
        }
    }

    #[test]
    fn expand_items_resolves_nesting() {
        let mut db = TransactionDb::new(vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2]]);
        db.consume(&[1, 2], &[0, 1, 2], 0);
        let ptr = db.pattern_base();
        db.consume(&[3, ptr], &[0, 1], 1);
        let expanded = expand_items(&db, &db.patterns()[1].items.clone());
        assert_eq!(expanded, vec![1, 2, 3]);
    }

    #[test]
    fn empty_db_yields_empty_stats() {
        let db = TransactionDb::new(vec![vec![1, 2]]);
        assert!(length_breakdown(&db).is_empty());
        assert!(top_patterns(&db, 3).is_empty());
    }
}
