//! The partition trie and potential-itemset generation (Algorithms 4–6).
//!
//! Transactions of a localized partition are inserted into a trie with
//! items ordered by descending partition frequency (the FP-growth-style
//! reordering that maximizes prefix sharing). Each node keeps the ids of
//! transactions whose reordered form passes through it. Potential itemsets
//! are the full root-prefixes ending at each *run* of equal transaction
//! counts, found by walking from maximal nodes back to the root and
//! coloring runs so shared prefixes are emitted once (Table 4.2 /
//! Fig. 4.3's example: `{1,2,3,5,6,10,12,15}×3`, `{1,2,3}×5`, `{1,2}×7`).

use plasma_data::hash::FxHashMap;

/// One potential itemset extracted from the trie.
#[derive(Debug, Clone)]
pub struct PotentialItemset {
    /// Items, sorted ascending (ready for subset tests).
    pub items: Vec<u32>,
    /// Ids of transactions sharing this prefix.
    pub transactions: Vec<u32>,
    /// Total current length of those transactions (for RC scoring).
    pub tx_len_sum: usize,
}

struct Node {
    item: u32,
    parent: usize,
    depth: u32,
    txs: Vec<u32>,
    children: FxHashMap<u32, usize>,
    colored: bool,
}

/// The partition trie.
pub struct Trie {
    nodes: Vec<Node>,
}

impl Trie {
    /// Builds the trie from `(transaction id, item list)` pairs. Items
    /// occurring only once in the partition are skipped ("only items which
    /// occur at least twice are inserted into the trie").
    pub fn build_from_pairs(txs: &[(u32, &[u32])]) -> Trie {
        // Partition-local item frequencies.
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        for (_, items) in txs {
            for &it in items.iter() {
                *counts.entry(it).or_insert(0) += 1;
            }
        }
        let mut trie = Trie {
            nodes: vec![Node {
                item: u32::MAX,
                parent: usize::MAX,
                depth: 0,
                txs: Vec::new(),
                children: FxHashMap::default(),
                colored: true, // root is never part of a pattern
            }],
        };
        let mut reordered: Vec<u32> = Vec::new();
        for &(id, items) in txs {
            reordered.clear();
            reordered.extend(items.iter().copied().filter(|it| counts[it] >= 2));
            // Descending frequency, ties by item id (stable across runs).
            reordered.sort_unstable_by(|a, b| counts[b].cmp(&counts[a]).then(a.cmp(b)));
            trie.insert(&reordered, id);
        }
        trie
    }

    fn insert(&mut self, items: &[u32], tx_id: u32) {
        let mut cur = 0usize;
        for &it in items {
            let next = match self.nodes[cur].children.get(&it) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    let depth = self.nodes[cur].depth + 1;
                    self.nodes.push(Node {
                        item: it,
                        parent: cur,
                        depth,
                        txs: Vec::new(),
                        children: FxHashMap::default(),
                        colored: false,
                    });
                    self.nodes[cur].children.insert(it, n);
                    n
                }
            };
            self.nodes[next].txs.push(tx_id);
            cur = next;
        }
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the trie holds no items.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Generates the potential itemset list (Algorithms 5 + 6).
    ///
    /// `tx_len` reports the current length of a transaction (for RC
    /// scoring of the potential itemsets).
    pub fn potential_itemsets(&mut self, tx_len: impl Fn(u32) -> usize) -> Vec<PotentialItemset> {
        // Maximal nodes: count ≥ 2 and no child with count ≥ 2.
        let maximal: Vec<usize> = (1..self.nodes.len())
            .filter(|&n| {
                let node = &self.nodes[n];
                node.txs.len() >= 2 && node.children.values().all(|&c| self.nodes[c].txs.len() < 2)
            })
            .collect();
        let mut out = Vec::new();
        for m in maximal {
            self.mark_node(m, &mut out, &tx_len);
        }
        out
    }

    /// Algorithm 6: emit the full prefix ending at `node`'s equal-count
    /// run, color the run, and recurse into uncolored ancestors.
    fn mark_node(
        &mut self,
        node: usize,
        out: &mut Vec<PotentialItemset>,
        tx_len: &impl Fn(u32) -> usize,
    ) {
        let count = self.nodes[node].txs.len();
        if !self.nodes[node].colored && count >= 2 {
            // The emitted itemset is the whole root prefix; the run
            // (nodes sharing this count) gets colored.
            let mut items = Vec::with_capacity(self.nodes[node].depth as usize);
            let mut cur = node;
            while cur != 0 {
                items.push(self.nodes[cur].item);
                cur = self.nodes[cur].parent;
            }
            items.sort_unstable();
            items.dedup();
            let transactions = self.nodes[node].txs.clone();
            let tx_len_sum = transactions.iter().map(|&t| tx_len(t)).sum();
            if items.len() >= 2 {
                out.push(PotentialItemset {
                    items,
                    transactions,
                    tx_len_sum,
                });
            }
            // Color the equal-count run.
            let mut cur = node;
            while cur != 0 && self.nodes[cur].txs.len() == count {
                self.nodes[cur].colored = true;
                cur = self.nodes[cur].parent;
            }
            if cur != 0 && !self.nodes[cur].colored {
                self.mark_node(cur, out, tx_len);
            }
        } else if count >= 2 {
            // Already colored here; an uncolored ancestor may still need
            // emitting (shared prefix reached from a second branch).
            let parent = self.nodes[node].parent;
            if parent != 0 && parent != usize::MAX && !self.nodes[parent].colored {
                self.mark_node(parent, out, tx_len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Table 4.1 / Fig. 4.3.
    fn paper_transactions() -> Vec<(u32, Vec<u32>)> {
        vec![
            (23, vec![6, 10, 5, 12, 15, 1, 2, 3]),
            (102, vec![1, 2, 3, 20]),
            (55, vec![2, 3, 10, 12, 1, 5, 6, 15]),
            (204, vec![1, 7, 8, 9, 3]),
            (13, vec![1, 2, 3, 8]),
            (64, vec![1, 2, 3, 5, 6, 10, 12, 15]),
            (43, vec![1, 2, 5, 10, 22, 31, 8, 23, 36, 6]),
            (431, vec![1, 2, 5, 10, 21, 31, 67, 8, 23, 36, 6]),
        ]
    }

    fn build_paper_trie() -> (Trie, Vec<(u32, Vec<u32>)>) {
        let txs = paper_transactions();
        let pairs: Vec<(u32, &[u32])> = txs.iter().map(|(id, t)| (*id, t.as_slice())).collect();
        (Trie::build_from_pairs(&pairs), txs)
    }

    #[test]
    fn paper_example_yields_table_4_2_patterns() {
        let (mut trie, txs) = build_paper_trie();
        let len_of = |id: u32| {
            txs.iter()
                .find(|(tid, _)| *tid == id)
                .map(|(_, t)| t.len())
                .expect("known id")
        };
        let pots = trie.potential_itemsets(len_of);
        let find = |items: &[u32]| {
            pots.iter()
                .find(|p| p.items == items)
                .unwrap_or_else(|| panic!("pattern {items:?} missing from {pots:?}"))
        };
        // The three headline patterns of Table 4.2.
        let p8 = find(&[1, 2, 3, 5, 6, 10, 12, 15]);
        assert_eq!(p8.transactions.len(), 3);
        let p9 = find(&[1, 2, 5, 6, 8, 10, 23, 31, 36]);
        assert_eq!(p9.transactions.len(), 2);
        let p3 = find(&[1, 2, 3]);
        assert_eq!(p3.transactions.len(), 5);
    }

    #[test]
    fn utilities_match_table_4_2() {
        use crate::utility::Utility;
        let (mut trie, txs) = build_paper_trie();
        let len_of = |id: u32| {
            txs.iter()
                .find(|(tid, _)| *tid == id)
                .map(|(_, t)| t.len())
                .expect("known id")
        };
        let pots = trie.potential_itemsets(len_of);
        let util = |items: &[u32]| {
            let p = pots.iter().find(|p| p.items == items).expect("present");
            Utility::Area.score(
                p.items.len(),
                &p.transactions
                    .iter()
                    .map(|&t| len_of(t))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(util(&[1, 2, 3, 5, 6, 10, 12, 15]), 14.0);
        assert_eq!(util(&[1, 2, 5, 6, 8, 10, 23, 31, 36]), 8.0);
        assert_eq!(util(&[1, 2, 3]), 8.0);
    }

    #[test]
    fn singleton_items_are_dropped() {
        let txs: Vec<(u32, Vec<u32>)> = vec![(0, vec![1, 2, 99]), (1, vec![1, 2, 98])];
        let pairs: Vec<(u32, &[u32])> = txs.iter().map(|(id, t)| (*id, t.as_slice())).collect();
        let mut trie = Trie::build_from_pairs(&pairs);
        let pots = trie.potential_itemsets(|_| 3);
        assert_eq!(pots.len(), 1);
        assert_eq!(pots[0].items, vec![1, 2]);
        assert_eq!(pots[0].transactions.len(), 2);
    }

    #[test]
    fn empty_partition() {
        let mut trie = Trie::build_from_pairs(&[]);
        assert!(trie.is_empty());
        assert!(trie.potential_itemsets(|_| 0).is_empty());
    }

    #[test]
    fn disjoint_transactions_yield_nothing() {
        let txs: Vec<(u32, Vec<u32>)> = vec![(0, vec![1, 2]), (1, vec![3, 4])];
        let pairs: Vec<(u32, &[u32])> = txs.iter().map(|(id, t)| (*id, t.as_slice())).collect();
        let mut trie = Trie::build_from_pairs(&pairs);
        assert!(trie.potential_itemsets(|_| 2).is_empty());
    }
}
