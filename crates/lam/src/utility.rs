//! Pattern utility functions (§4.4.2).
//!
//! * **Area** — `(L−1)·(F−1)`: cells saved by replacing `F` occurrences of
//!   an `L`-item pattern with pointers plus one code-table entry.
//! * **Relative Closedness (RC)** — `Σ_{t ∋ I} |I| / |t|`: how much of each
//!   covering transaction the pattern explains; favors patterns that
//!   dominate their transactions (the paper's counter-example dataset is
//!   compressed optimally by RC but not by Area).

/// The two utility functions LAM supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Utility {
    /// `(L−1)·(F−1)`.
    Area,
    /// `Σ |I| / |t|` over covering transactions.
    RelativeClosedness,
}

impl Utility {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Utility::Area => "Area",
            Utility::RelativeClosedness => "RC",
        }
    }

    /// Scores a pattern of length `len` whose covering transactions have
    /// the given lengths.
    pub fn score(self, len: usize, tx_lengths: &[usize]) -> f64 {
        match self {
            Utility::Area => {
                (len.saturating_sub(1) as f64) * (tx_lengths.len().saturating_sub(1) as f64)
            }
            Utility::RelativeClosedness => tx_lengths
                .iter()
                .map(|&tl| len as f64 / tl.max(1) as f64)
                .sum(),
        }
    }

    /// Fast rescoring from summary stats (`O(1)`, as the consume loop
    /// requires): `len`, `frequency`, and the mean covering-transaction
    /// length.
    pub fn score_fast(self, len: usize, frequency: usize, mean_tx_len: f64) -> f64 {
        match self {
            Utility::Area => (len.saturating_sub(1) as f64) * (frequency.saturating_sub(1) as f64),
            Utility::RelativeClosedness => frequency as f64 * len as f64 / mean_tx_len.max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_matches_formula() {
        assert_eq!(Utility::Area.score(8, &[10, 10, 10]), 14.0); // (8−1)(3−1)
        assert_eq!(Utility::Area.score(1, &[5, 5]), 0.0);
        assert_eq!(Utility::Area.score(5, &[9]), 0.0);
    }

    #[test]
    fn rc_sums_coverage_fractions() {
        // |I|=3 over transactions of lengths 3 and 6 → 1 + 0.5.
        let s = Utility::RelativeClosedness.score(3, &[3, 6]);
        assert!((s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn paper_counter_example_ordering() {
        // Fig. 4.2: rows 1–2 are {1..12}; rows 3–6 are {10,11,12}.
        // Area prefers the 12-itemset (11×1=11) over {10,11,12} (2×5=10);
        // RC prefers {10,11,12}: 2×(3/12) + 4×(3/3) = 4.5 vs 2×(12/12) = 2.
        let area_big = Utility::Area.score(12, &[12, 12]);
        let area_small = Utility::Area.score(3, &[12, 12, 3, 3, 3, 3]);
        assert!(area_big > area_small);
        let rc_big = Utility::RelativeClosedness.score(12, &[12, 12]);
        let rc_small = Utility::RelativeClosedness.score(3, &[12, 12, 3, 3, 3, 3]);
        assert!(rc_small > rc_big);
    }

    #[test]
    fn fast_score_agrees_with_exact_for_area() {
        assert_eq!(
            Utility::Area.score_fast(6, 4, 10.0),
            Utility::Area.score(6, &[10, 10, 10, 10])
        );
    }

    #[test]
    fn fast_score_rc_uses_mean_length() {
        let exact = Utility::RelativeClosedness.score(3, &[6, 6]);
        let fast = Utility::RelativeClosedness.score_fast(3, 2, 6.0);
        assert!((exact - fast).abs() < 1e-12);
    }
}
