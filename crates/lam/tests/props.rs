//! Property tests for LAM: losslessness, cost-model soundness, and
//! localization coverage on arbitrary transaction databases.

use proptest::prelude::*;

use plasma_lam::db::{contains_sorted, TransactionDb};
use plasma_lam::localize::{localize, LocalizeConfig};
use plasma_lam::miner::Lam;

fn arb_transactions() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..120, 1..25), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lam_is_always_lossless(txs in arb_transactions(), passes in 1u32..4) {
        let canonical: Vec<Vec<u32>> = txs
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let mut db = TransactionDb::new(txs);
        Lam::with_passes(passes).run(&mut db);
        for (i, orig) in canonical.iter().enumerate() {
            prop_assert_eq!(&db.expand(i), orig, "transaction {} corrupted", i);
        }
    }

    #[test]
    fn lam_never_inflates_the_database(txs in arb_transactions()) {
        let mut db = TransactionDb::new(txs);
        let before = db.original_cells();
        Lam::with_passes(3).run(&mut db);
        prop_assert!(
            db.compressed_cells() <= before,
            "compressed {} > original {}",
            db.compressed_cells(),
            before
        );
    }

    #[test]
    fn ratio_per_pass_is_nondecreasing(txs in arb_transactions()) {
        let mut db = TransactionDb::new(txs);
        let r = Lam::with_passes(4).run(&mut db);
        for w in r.ratio_per_pass.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn every_code_table_pattern_is_used_at_least_twice(txs in arb_transactions()) {
        let mut db = TransactionDb::new(txs);
        Lam::with_passes(3).run(&mut db);
        for p in db.patterns() {
            prop_assert!(p.occurrences >= 2, "pattern used {} times", p.occurrences);
            prop_assert!(p.items.len() >= 2);
        }
    }

    #[test]
    fn localization_partitions_exactly(txs in arb_transactions(), threshold in 2usize..40) {
        let cfg = LocalizeConfig {
            threshold,
            ..LocalizeConfig::default()
        };
        let parts = localize(&txs, &cfg);
        prop_assert_eq!(parts.total(), txs.len());
        let mut seen = vec![false; txs.len()];
        for g in &parts.groups {
            for &id in g {
                prop_assert!(!seen[id as usize], "duplicate assignment of {}", id);
                seen[id as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn contains_sorted_matches_hashset_semantics(
        hay in proptest::collection::btree_set(0u32..200, 0..40),
        needle in proptest::collection::btree_set(0u32..200, 0..15)
    ) {
        let hay_v: Vec<u32> = hay.iter().copied().collect();
        let needle_v: Vec<u32> = needle.iter().copied().collect();
        let expected = needle.is_subset(&hay);
        prop_assert_eq!(contains_sorted(&hay_v, &needle_v), expected);
    }

    #[test]
    fn compression_ratio_formula_consistent(txs in arb_transactions()) {
        let mut db = TransactionDb::new(txs);
        Lam::with_passes(2).run(&mut db);
        let expected = db.original_cells() as f64 / db.compressed_cells().max(1) as f64;
        prop_assert!((db.compression_ratio() - expected).abs() < 1e-12);
    }
}
