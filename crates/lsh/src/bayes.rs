//! BayesLSH inference: posterior reasoning over pair similarity.
//!
//! For a candidate pair, hashes are compared incrementally in batches. With
//! `m` matches out of `n` hashes, the likelihood of true similarity `s` is
//! binomial in the family's collision probability `p(s)`. Under a uniform
//! prior over the similarity domain, the (discretized) posterior yields:
//!
//! * the **pruning** rule of Eq. 2.1 — stop and discard when
//!   `Pr(S ≥ t | m, n) < ε`;
//! * the **concentration** rule of Eq. 2.2 — stop and accept when
//!   `Pr(|ŝ − s| ≥ δ) < γ` around the posterior-mode estimate `ŝ`;
//! * the memoized per-pair record PLASMA-HD keeps (MAP estimate, variance,
//!   `m`, `n`) that powers the Cumulative APSS Graph and knowledge cache.
//!
//! The posterior is evaluated on a fixed grid; log-collision probabilities
//! are precomputed once per `(family, grid)` so each pair evaluation is a
//! few hundred fused multiply-adds.

use crate::family::LshFamily;
use crate::sketch::SketchSet;

/// Tunable parameters of the BayesLSH stopping rules.
#[derive(Debug, Clone, Copy)]
pub struct BayesParams {
    /// False-negative tolerance ε of the pruning rule (Eq. 2.1).
    pub epsilon: f64,
    /// Accuracy half-width δ of the concentration rule (Eq. 2.2).
    pub delta: f64,
    /// Miss probability γ of the concentration rule (Eq. 2.2).
    pub gamma: f64,
    /// Hashes compared per inference step.
    pub batch: usize,
}

impl Default for BayesParams {
    fn default() -> Self {
        // The BayesLSH paper's recommended operating point.
        Self {
            epsilon: 0.03,
            delta: 0.05,
            gamma: 0.03,
            batch: 32,
        }
    }
}

/// Outcome of evaluating one candidate pair at threshold `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairDecision {
    /// `Pr(S ≥ t) < ε`: the pair is discarded.
    Pruned,
    /// The similarity estimate concentrated: the pair is reported with the
    /// given estimate (it may still fall below `t`; the caller filters).
    Accepted,
    /// All hashes were consumed without either rule firing; the estimate is
    /// the best available (callers may fall back to an exact computation).
    Exhausted,
}

/// Memoized evaluation record for one pair — the unit of PLASMA-HD's
/// knowledge cache (§2.2.1: "we log the maximum a posteriori similarity
/// estimate of the pair given n … and m … and the estimate variance").
#[derive(Debug, Clone, Copy)]
pub struct PairEstimate {
    /// How the evaluation ended.
    pub decision: PairDecision,
    /// Matching hashes when evaluation stopped.
    pub matches: u32,
    /// Hashes compared when evaluation stopped.
    pub hashes: u32,
    /// Posterior-mode (MAP) similarity estimate.
    pub map_similarity: f64,
    /// Posterior variance of the similarity.
    pub variance: f64,
}

/// The BayesLSH inference engine for one hash family.
#[derive(Debug, Clone)]
pub struct BayesLsh {
    family: LshFamily,
    params: BayesParams,
    /// Similarity grid points.
    grid: Vec<f64>,
    /// `ln p(s_i)` per grid point.
    log_p: Vec<f64>,
    /// `ln (1 − p(s_i))` per grid point.
    log_q: Vec<f64>,
}

/// Number of posterior grid points. 256 keeps tail probabilities accurate
/// to well under the ε/γ values in use while staying cache-resident.
const GRID: usize = 256;

impl BayesLsh {
    /// Creates an engine for the family with the given stopping parameters.
    pub fn new(family: LshFamily, params: BayesParams) -> Self {
        let lo = family.domain_min();
        let hi = 1.0;
        let mut grid = Vec::with_capacity(GRID);
        let mut log_p = Vec::with_capacity(GRID);
        let mut log_q = Vec::with_capacity(GRID);
        for i in 0..GRID {
            let s = lo + (hi - lo) * (i as f64 + 0.5) / GRID as f64;
            // Clamp p into (0,1) so logs stay finite at the endpoints.
            let p = family.match_probability(s).clamp(1e-12, 1.0 - 1e-12);
            grid.push(s);
            log_p.push(p.ln());
            log_q.push((1.0 - p).ln());
        }
        Self {
            family,
            params,
            grid,
            log_p,
            log_q,
        }
    }

    /// The engine's family.
    pub fn family(&self) -> LshFamily {
        self.family
    }

    /// The engine's parameters.
    pub fn params(&self) -> BayesParams {
        self.params
    }

    /// Posterior over the similarity grid given `m` matches in `n` hashes.
    /// Returns normalized weights parallel to [`grid`](Self::grid_points).
    pub fn posterior(&self, m: u32, n: u32) -> Vec<f64> {
        let mut out = Vec::new();
        self.posterior_into(m, n, &mut out);
        out
    }

    /// [`posterior`](Self::posterior) into a caller-owned buffer, so hot
    /// loops (pair evaluation, curve assembly) reuse one allocation across
    /// thousands of cells.
    pub fn posterior_into(&self, m: u32, n: u32, out: &mut Vec<f64>) {
        debug_assert!(m <= n);
        let mf = m as f64;
        let nf = n as f64;
        out.clear();
        out.resize(GRID, 0.0);
        let mut max = f64::NEG_INFINITY;
        for (i, w) in out.iter_mut().enumerate() {
            let lw = mf * self.log_p[i] + (nf - mf) * self.log_q[i];
            *w = lw;
            if lw > max {
                max = lw;
            }
        }
        let mut total = 0.0;
        for lw in out.iter_mut() {
            *lw = (*lw - max).exp();
            total += *lw;
        }
        for w in out.iter_mut() {
            *w /= total;
        }
    }

    /// The similarity grid points.
    pub fn grid_points(&self) -> &[f64] {
        &self.grid
    }

    /// `Pr(S ≥ t | m, n)` under the discretized posterior.
    pub fn prob_at_least(&self, m: u32, n: u32, t: f64) -> f64 {
        let post = self.posterior(m, n);
        self.tail_mass(&post, t)
    }

    fn tail_mass(&self, post: &[f64], t: f64) -> f64 {
        let mut acc = 0.0;
        for (i, &w) in post.iter().enumerate() {
            if self.grid[i] >= t {
                acc += w;
            }
        }
        acc
    }

    /// Posterior summary: (MAP, mean, variance).
    pub fn summarize(&self, post: &[f64]) -> (f64, f64, f64) {
        let mut map_i = 0;
        let mut best = -1.0;
        let mut mean = 0.0;
        for (i, &w) in post.iter().enumerate() {
            if w > best {
                best = w;
                map_i = i;
            }
            mean += w * self.grid[i];
        }
        let mut var = 0.0;
        for (i, &w) in post.iter().enumerate() {
            let d = self.grid[i] - mean;
            var += w * d * d;
        }
        (self.grid[map_i], mean, var)
    }

    /// Evaluates one candidate pair from its sketches at threshold `t`,
    /// applying pruning and concentration incrementally in batches.
    pub fn evaluate_pair(&self, sketches: &SketchSet, i: usize, j: usize, t: f64) -> PairEstimate {
        let max_n = sketches.n_hashes();
        let mut scratch = Vec::new();
        let mut n = 0usize;
        loop {
            n = (n + self.params.batch).min(max_n);
            let m = sketches.matches(i, j, n);
            let cell = self.decide_with(m, n as u32, t, &mut scratch);
            if let Some(est) = cell.settle(m, n, max_n) {
                return est;
            }
        }
    }

    /// Builds a lazily-filled decision table for probing at threshold `t`.
    ///
    /// Per probe there are only `Σ_k n_k ≈ 1.2k` distinct `(m, n)` cells
    /// (batch schedule × match counts), so memoizing the stopping-rule
    /// decisions turns per-pair inference into table lookups — the
    /// precomputation BayesLSH relies on for its throughput.
    pub fn probe_table(&self, t: f64) -> ProbeTable<'_> {
        ProbeTable {
            engine: self,
            threshold: t,
            cells: plasma_data::hash::FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Computes the decision cell for `(m, n)` at threshold `t` with a
    /// caller-owned posterior buffer — the single home of both stopping
    /// rules (Eq. 2.1 pruning first, Eq. 2.2 concentration second), so
    /// every evaluation path applies them identically.
    fn decide_with(&self, m: u32, n: u32, t: f64, scratch: &mut Vec<f64>) -> Cell {
        self.posterior_into(m, n, scratch);
        let (map, _mean, var) = self.summarize(scratch);
        let prune = self.tail_mass(scratch, t) < self.params.epsilon;
        let mut inside = 0.0;
        for (gi, &w) in scratch.iter().enumerate() {
            if (self.grid[gi] - map).abs() < self.params.delta {
                inside += w;
            }
        }
        let accept = 1.0 - inside < self.params.gamma;
        Cell {
            prune,
            accept,
            map,
            var,
        }
    }
}

/// One memoized stopping-rule decision.
#[derive(Debug, Clone, Copy)]
struct Cell {
    prune: bool,
    accept: bool,
    map: f64,
    var: f64,
}

impl Cell {
    /// Estimate with this cell's posterior summary and the given decision.
    fn as_estimate(self, decision: PairDecision, m: u32, n: u32) -> PairEstimate {
        PairEstimate {
            decision,
            matches: m,
            hashes: n,
            map_similarity: self.map,
            variance: self.var,
        }
    }

    /// Terminal estimate for a batch step at `(m, n)` of `max_n` hashes,
    /// or `None` when evaluation must continue. Pruning outranks
    /// acceptance, matching the rule order of Eqs. 2.1 and 2.2.
    fn settle(self, m: u32, n: usize, max_n: usize) -> Option<PairEstimate> {
        let decision = if self.prune {
            PairDecision::Pruned
        } else if self.accept {
            PairDecision::Accepted
        } else if n == max_n {
            PairDecision::Exhausted
        } else {
            return None;
        };
        Some(self.as_estimate(decision, m, n as u32))
    }
}

/// A pair's memoized hash-comparison knowledge: the match count at every
/// batch boundary of the canonical evaluation schedule (`n_k =
/// min(k·batch, n_hashes)` for `k = 1, 2, …`), up to the deepest step any
/// probe has compared so far.
///
/// This is the unit the *shared* knowledge cache publishes. Unlike a bare
/// `(m, n)` endpoint, a profile makes re-evaluation **confluent**: every
/// evaluation replays the same fresh schedule, reading memoized counts for
/// covered steps (zero hash comparisons) and comparing hashes only past
/// the deepest covered step — so the returned [`PairEstimate`] is bit
/// identical to a from-scratch [`ProbeTable::evaluate_pair`] no matter
/// which probes (from which sessions, in which order) populated the
/// profile. Merging two profiles is "keep the deeper one"
/// ([`MatchProfile::adopt_deeper`]): commutative, associative, and
/// idempotent, so the cache state after a set of probes is independent of
/// thread count and session interleaving.
///
/// A profile is only meaningful for the `(sketches, batch)` pair it was
/// built against; the shared cache pins both.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchProfile {
    /// `counts[k]` = matches among the first `min((k+1)·batch, n_hashes)`
    /// hashes.
    counts: Vec<u32>,
}

impl MatchProfile {
    /// An empty profile (no batch steps compared yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of batch steps covered.
    pub fn covered_steps(&self) -> usize {
        self.counts.len()
    }

    /// True when no batch step has been compared yet.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Replaces this profile with `other` when `other` covers more batch
    /// steps — the order-free merge rule of the shared knowledge cache.
    /// Equal-depth profiles over the same sketches are identical, so ties
    /// keep `self`.
    pub fn adopt_deeper(&mut self, other: MatchProfile) {
        if other.counts.len() > self.counts.len() {
            self.counts = other.counts;
        }
    }

    /// Heap bytes this profile holds, for cache accounting. Counts the
    /// *capacity* of the match-count vector — what the allocator actually
    /// charges — not just its length, so a bounded cache's accounting is
    /// honest about push-growth slack. Publish paths that care about tight
    /// accounting call [`shrink_to_fit`](Self::shrink_to_fit) first.
    ///
    /// ```
    /// use plasma_lsh::bayes::MatchProfile;
    ///
    /// let p = MatchProfile::new();
    /// assert_eq!(p.byte_size(), 0, "empty profiles own no heap");
    /// ```
    pub fn byte_size(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u32>()
    }

    /// Releases excess capacity so [`byte_size`](Self::byte_size) equals
    /// `covered_steps() * 4` bytes. The shared knowledge cache shrinks
    /// profiles at publication time: a profile deepens at most
    /// `n_hashes / batch` times over its whole life, so the occasional
    /// realloc is cheap, and the memo pool's accounted footprint stays
    /// slack-free.
    pub fn shrink_to_fit(&mut self) {
        self.counts.shrink_to_fit();
    }
}

/// Outcome of a profile-backed pair evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ProfiledEval {
    /// The decision record — bit-identical to what
    /// [`ProbeTable::evaluate_pair`] returns for the same pair.
    pub estimate: PairEstimate,
    /// Hash positions newly compared by this evaluation (0 when the
    /// profile answered every visited batch step — a full cache hit).
    pub new_hashes: u32,
}

/// Lazily-filled `(m, n) → decision` table for one probe threshold.
///
/// Tables are intentionally cheap to construct (an empty map plus a
/// scratch buffer), so parallel pair evaluation hands each worker its own
/// table instead of sharing one behind a lock; per-worker cells repopulate
/// in a few hundred posterior evaluations.
pub struct ProbeTable<'a> {
    engine: &'a BayesLsh,
    threshold: f64,
    cells: plasma_data::hash::FxHashMap<(u32, u32), Cell>,
    /// Reused posterior buffer: cell misses compute without allocating.
    scratch: Vec<f64>,
}

impl ProbeTable<'_> {
    /// The probe threshold this table serves.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of memoized `(m, n)` cells.
    pub fn cells_memoized(&self) -> usize {
        self.cells.len()
    }

    fn cell(&mut self, m: u32, n: u32) -> Cell {
        let engine = self.engine;
        let t = self.threshold;
        let scratch = &mut self.scratch;
        *self
            .cells
            .entry((m, n))
            .or_insert_with(|| engine.decide_with(m, n, t, scratch))
    }

    /// Table-driven equivalent of [`BayesLsh::evaluate_pair`].
    pub fn evaluate_pair(&mut self, sketches: &SketchSet, i: usize, j: usize) -> PairEstimate {
        let max_n = sketches.n_hashes();
        let batch = self.engine.params.batch;
        let mut n = 0usize;
        loop {
            n = (n + batch).min(max_n);
            let m = sketches.matches(i, j, n);
            if let Some(est) = self.cell(m, n as u32).settle(m, n, max_n) {
                return est;
            }
        }
    }

    /// Evaluates a pair through its [`MatchProfile`], extending the
    /// profile in place past its deepest covered step.
    ///
    /// The walk is the canonical fresh schedule (`n = batch, 2·batch, …`,
    /// stop at the first decisive cell), with each step's match count
    /// either read from the profile (free) or computed incrementally via
    /// [`SketchSet::matches_range`] and appended to the profile. The
    /// returned estimate is therefore bit-identical to
    /// [`evaluate_pair`](Self::evaluate_pair) regardless of how much of
    /// the profile was already populated — the property the shared
    /// knowledge cache's determinism guarantee rests on. Only
    /// [`ProfiledEval::new_hashes`] varies with cache warmth.
    pub fn evaluate_profiled(
        &mut self,
        sketches: &SketchSet,
        i: usize,
        j: usize,
        profile: &mut MatchProfile,
    ) -> ProfiledEval {
        let max_n = sketches.n_hashes();
        let batch = self.engine.params.batch;
        let mut new_hashes = 0u32;
        let mut n_prev = 0usize;
        let mut m_prev = 0u32;
        let mut step = 0usize;
        loop {
            let n = ((step + 1) * batch).min(max_n);
            let m = match profile.counts.get(step) {
                Some(&m) => m,
                None => {
                    let m = m_prev + sketches.matches_range(i, j, n_prev, n);
                    new_hashes += (n - n_prev) as u32;
                    profile.counts.push(m);
                    m
                }
            };
            if let Some(est) = self.cell(m, n as u32).settle(m, n, max_n) {
                return ProfiledEval {
                    estimate: est,
                    new_hashes,
                };
            }
            n_prev = n;
            m_prev = m;
            step += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::Sketcher;
    use plasma_data::vector::SparseVector;

    fn engine(fam: LshFamily) -> BayesLsh {
        BayesLsh::new(fam, BayesParams::default())
    }

    #[test]
    fn posterior_sums_to_one() {
        let e = engine(LshFamily::MinHash);
        for &(m, n) in &[(0u32, 32u32), (16, 32), (32, 32), (100, 128)] {
            let p = e.posterior(m, n);
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "({m},{n}) sums to {total}");
        }
    }

    #[test]
    fn posterior_mode_tracks_match_rate_minhash() {
        let e = engine(LshFamily::MinHash);
        let post = e.posterior(96, 128);
        let (map, mean, var) = e.summarize(&post);
        assert!((map - 0.75).abs() < 0.05, "map {map}");
        assert!((mean - 0.75).abs() < 0.05, "mean {mean}");
        assert!(var > 0.0 && var < 0.01);
    }

    #[test]
    fn posterior_mode_tracks_cosine_for_simhash() {
        let e = engine(LshFamily::SimHash);
        // Match rate 0.9 → cosine = cos(0.1π) ≈ 0.951.
        let post = e.posterior(230, 256);
        let (map, _, _) = e.summarize(&post);
        let expected = (0.1 * std::f64::consts::PI).cos();
        assert!((map - expected).abs() < 0.06, "map {map} vs {expected}");
    }

    #[test]
    fn prob_at_least_behaves_monotonically() {
        let e = engine(LshFamily::MinHash);
        let p_low = e.prob_at_least(10, 64, 0.5);
        let p_high = e.prob_at_least(60, 64, 0.5);
        assert!(
            p_low < 0.01,
            "low match rate should rule out s≥0.5: {p_low}"
        );
        assert!(
            p_high > 0.99,
            "high match rate should imply s≥0.5: {p_high}"
        );
    }

    #[test]
    fn variance_shrinks_with_more_hashes() {
        let e = engine(LshFamily::MinHash);
        let (_, _, v1) = e.summarize(&e.posterior(16, 32));
        let (_, _, v2) = e.summarize(&e.posterior(128, 256));
        assert!(v2 < v1, "more evidence must concentrate the posterior");
    }

    #[test]
    fn dissimilar_pair_is_pruned_quickly() {
        let a = SparseVector::from_set((0..100).collect());
        let b = SparseVector::from_set((1000..1100).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 256, 3).sketch_all(&[a, b]);
        let e = engine(LshFamily::MinHash);
        let r = e.evaluate_pair(&sk, 0, 1, 0.7);
        assert_eq!(r.decision, PairDecision::Pruned);
        assert!(
            r.hashes < 128,
            "pruning should fire well before exhausting hashes, used {}",
            r.hashes
        );
    }

    #[test]
    fn similar_pair_is_accepted_with_good_estimate() {
        let a = SparseVector::from_set((0..200).collect());
        let b = SparseVector::from_set((20..220).collect()); // jaccard = 180/220
        let truth = 180.0 / 220.0;
        let sk = Sketcher::new(LshFamily::MinHash, 512, 5).sketch_all(&[a, b]);
        let e = engine(LshFamily::MinHash);
        let r = e.evaluate_pair(&sk, 0, 1, 0.5);
        assert_ne!(r.decision, PairDecision::Pruned);
        assert!(
            (r.map_similarity - truth).abs() < 0.1,
            "estimate {} vs truth {truth}",
            r.map_similarity
        );
    }

    #[test]
    fn probe_table_matches_direct_evaluation() {
        let a = SparseVector::from_set((0..150).collect());
        let b = SparseVector::from_set((40..190).collect());
        let c = SparseVector::from_set((500..650).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 256, 4).sketch_all(&[a, b, c]);
        let e = engine(LshFamily::MinHash);
        let mut table = e.probe_table(0.6);
        for &(i, j) in &[(0usize, 1usize), (0, 2), (1, 2)] {
            let direct = e.evaluate_pair(&sk, i, j, 0.6);
            let tabled = table.evaluate_pair(&sk, i, j);
            assert_eq!(direct.decision, tabled.decision, "pair ({i},{j})");
            assert_eq!(direct.matches, tabled.matches);
            assert_eq!(direct.hashes, tabled.hashes);
            assert!((direct.map_similarity - tabled.map_similarity).abs() < 1e-12);
        }
    }

    #[test]
    fn profiled_evaluation_is_bit_identical_to_fresh_at_any_warmth() {
        let a = SparseVector::from_set((0..150).collect());
        let b = SparseVector::from_set((50..200).collect());
        let c = SparseVector::from_set((900..1050).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 256, 9).sketch_all(&[a, b, c]);
        let e = engine(LshFamily::MinHash);
        for &(i, j) in &[(0usize, 1usize), (0, 2), (1, 2)] {
            // Warm the profile at one threshold, then evaluate at others:
            // the estimate must equal the from-scratch evaluation exactly,
            // whatever the profile already covers.
            let mut profile = MatchProfile::new();
            for t in [0.9, 0.3, 0.6, 0.3] {
                let mut table = e.probe_table(t);
                let fresh = table.evaluate_pair(&sk, i, j);
                let profiled = table.evaluate_profiled(&sk, i, j, &mut profile);
                assert_eq!(profiled.estimate.decision, fresh.decision, "({i},{j})@{t}");
                assert_eq!(profiled.estimate.matches, fresh.matches);
                assert_eq!(profiled.estimate.hashes, fresh.hashes);
                assert_eq!(
                    profiled.estimate.map_similarity.to_bits(),
                    fresh.map_similarity.to_bits()
                );
                assert_eq!(
                    profiled.estimate.variance.to_bits(),
                    fresh.variance.to_bits()
                );
            }
            // Re-running any already-probed threshold is free.
            let mut table = e.probe_table(0.9);
            let again = table.evaluate_profiled(&sk, i, j, &mut profile);
            assert_eq!(again.new_hashes, 0, "({i},{j}) re-probe must be free");
        }
    }

    #[test]
    fn profile_byte_size_tracks_heap_and_shrinks_tight() {
        let a = SparseVector::from_set((0..120).collect());
        let b = SparseVector::from_set((40..160).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 256, 9).sketch_all(&[a, b]);
        let e = engine(LshFamily::MinHash);
        let mut profile = MatchProfile::new();
        assert_eq!(profile.byte_size(), 0);
        e.probe_table(0.2)
            .evaluate_profiled(&sk, 0, 1, &mut profile);
        assert!(profile.covered_steps() > 0);
        // Capacity-based accounting bounds the length-based minimum…
        let tight = profile.covered_steps() * std::mem::size_of::<u32>();
        assert!(profile.byte_size() >= tight);
        // …and shrinking makes them equal.
        profile.shrink_to_fit();
        assert_eq!(profile.byte_size(), tight);
    }

    #[test]
    fn profile_adoption_keeps_deepest() {
        let a = SparseVector::from_set((0..120).collect());
        let b = SparseVector::from_set((40..160).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 256, 9).sketch_all(&[a, b]);
        let e = engine(LshFamily::MinHash);
        let mut shallow = MatchProfile::new();
        e.probe_table(0.95)
            .evaluate_profiled(&sk, 0, 1, &mut shallow);
        let mut deep = MatchProfile::new();
        e.probe_table(0.2).evaluate_profiled(&sk, 0, 1, &mut deep);
        assert!(deep.covered_steps() >= shallow.covered_steps());
        let mut merged = shallow.clone();
        merged.adopt_deeper(deep.clone());
        // Same-depth profiles over the same sketches are identical, so the
        // merged profile is the deep one whichever way the merge runs.
        assert_eq!(merged, deep);
        let mut other = deep.clone();
        other.adopt_deeper(shallow);
        assert_eq!(merged, other);
    }
}
