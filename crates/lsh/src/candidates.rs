//! Candidate-pair generation for all-pairs similarity search.
//!
//! BayesLSH filters candidates; something must generate them. Two
//! strategies are provided:
//!
//! * **Exhaustive** — every unordered pair. Exact recall; quadratic. Used
//!   for small data and ground-truth comparisons.
//! * **Banded LSH** — records sharing any band of `w` consecutive hashes
//!   become candidates (the classic LSH-join). Recall at similarity `s` is
//!   `1 − (1 − p(s)^w)^b` with `b` bands, so band width tunes the
//!   threshold the join targets.
//!
//! The banded join buckets each band independently, so bands shard across
//! threads. Cross-band duplicates are removed by sorting each band's pair
//! run and merging the runs with a k-way dedup — peak memory tracks the
//! per-band runs instead of a global hash-set over every distinct pair,
//! which is what used to dominate on dense buckets.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use plasma_data::hash::FxHashMap;
use rayon::prelude::*;

use crate::resolve_parallelism;
use crate::sketch::SketchSet;

/// Exact capacity for [`exhaustive`], `n·(n−1)/2`, computed with checked
/// arithmetic: when the multiply would overflow `usize` (an allocation no
/// machine can satisfy anyway), the pre-reservation is skipped entirely
/// and `Vec` growth takes over.
fn exhaustive_capacity(n: usize) -> usize {
    n.checked_mul(n.saturating_sub(1)).map_or(0, |p| p / 2)
}

/// Generates all unordered pairs `(i, j)`, `i < j`.
pub fn exhaustive(n: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(exhaustive_capacity(n));
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i as u32, j as u32));
        }
    }
    out
}

/// Banded LSH candidate generation over a sketch set, using all cores.
///
/// `bands` bands of `band_width` hashes each are read from the front of the
/// sketches; records sharing a band key in the same bucket are paired.
/// Duplicate pairs across bands are deduplicated. Output is sorted,
/// unique, and independent of the thread count.
pub fn banded(sketches: &SketchSet, bands: usize, band_width: usize) -> Vec<(u32, u32)> {
    banded_with(sketches, bands, band_width, None)
}

/// [`banded`] with an explicit thread count (`None` = all cores,
/// `Some(1)` = sequential).
pub fn banded_with(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    parallelism: Option<usize>,
) -> Vec<(u32, u32)> {
    let threads = resolve_parallelism(parallelism).min(bands.max(1));
    let runs: Vec<Vec<(u32, u32)>> = if threads <= 1 || bands <= 1 {
        (0..bands)
            .map(|band| band_run(sketches, band, band_width))
            .collect()
    } else {
        let band_ids: Vec<usize> = (0..bands).collect();
        let per_chunk = bands.div_ceil(threads);
        let nested: Vec<Vec<Vec<(u32, u32)>>> = band_ids
            .par_chunks(per_chunk)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&band| band_run(sketches, band, band_width))
                    .collect()
            })
            .collect();
        nested.into_iter().flatten().collect()
    };
    kway_merge_dedup(runs)
}

/// One band's sorted, deduplicated pair run.
fn band_run(sketches: &SketchSet, band: usize, band_width: usize) -> Vec<(u32, u32)> {
    let n = sketches.len();
    let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for i in 0..n {
        let key = sketches.band_key(i, band, band_width);
        buckets.entry(key).or_default().push(i as u32);
    }
    let mut run = Vec::new();
    for members in buckets.values() {
        if members.len() < 2 {
            continue;
        }
        for a in 0..members.len() {
            for b in (a + 1)..members.len() {
                let (i, j) = (members[a].min(members[b]), members[a].max(members[b]));
                run.push((i, j));
            }
        }
    }
    // Bucket members are pushed in record order, so pairs within one
    // bucket are already sorted; across buckets they are not.
    run.sort_unstable();
    run.dedup();
    run
}

/// Merges sorted runs into one sorted, duplicate-free vector.
fn kway_merge_dedup(runs: Vec<Vec<(u32, u32)>>) -> Vec<(u32, u32)> {
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.into_iter().next().expect("one run"),
        _ => {}
    }
    let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> = BinaryHeap::new();
    let mut cursors = vec![0usize; runs.len()];
    for (r, run) in runs.iter().enumerate() {
        if let Some(&first) = run.first() {
            heap.push(Reverse((first, r)));
        }
    }
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(runs.iter().map(Vec::len).max().unwrap_or(0));
    while let Some(Reverse((pair, r))) = heap.pop() {
        if out.last() != Some(&pair) {
            out.push(pair);
        }
        cursors[r] += 1;
        if let Some(&next) = runs[r].get(cursors[r]) {
            heap.push(Reverse((next, r)));
        }
    }
    out
}

/// Expected recall of a banded join at similarity `s`:
/// `1 − (1 − p(s)^w)^b`.
pub fn banded_recall(family: crate::family::LshFamily, s: f64, bands: usize, width: usize) -> f64 {
    let p = family.match_probability(s);
    1.0 - (1.0 - p.powi(width as i32)).powi(bands as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::LshFamily;
    use crate::sketch::Sketcher;
    use plasma_data::vector::SparseVector;

    #[test]
    fn exhaustive_counts() {
        assert_eq!(exhaustive(4).len(), 6);
        assert_eq!(exhaustive(0).len(), 0);
        assert_eq!(exhaustive(1).len(), 0);
    }

    #[test]
    fn exhaustive_capacity_is_exact_and_overflow_safe() {
        // Exact for representable sizes (matches the generated length)…
        for n in [0usize, 1, 2, 4, 100] {
            assert_eq!(exhaustive_capacity(n), exhaustive(n).len());
        }
        // …and degrades to no pre-reservation when n·(n−1) would overflow
        // usize, instead of panicking (debug) or requesting an absurd
        // allocation (release).
        for n in [usize::MAX, u32::MAX as usize + 2, 1 << 33] {
            assert_eq!(exhaustive_capacity(n), 0, "n = {n:#x}");
        }
        // Just below the overflow boundary the formula still computes.
        let n = 1usize << 32;
        assert_eq!(exhaustive_capacity(n), (n / 2) * (n - 1));
    }

    #[test]
    fn banded_finds_near_duplicates() {
        // Three clones and one unrelated record: the clones must pair up.
        let a = SparseVector::from_set((0..50).collect());
        let b = SparseVector::from_set((0..50).collect());
        let c = SparseVector::from_set((0..50).collect());
        let z = SparseVector::from_set((500..550).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 64, 1).sketch_all(&[a, b, c, z]);
        let cands = banded(&sk, 8, 8);
        assert!(cands.contains(&(0, 1)));
        assert!(cands.contains(&(0, 2)));
        assert!(cands.contains(&(1, 2)));
    }

    #[test]
    fn banded_skips_dissimilar_pairs_mostly() {
        // 20 mutually-disjoint sets: expected candidates ≈ 0.
        let records: Vec<SparseVector> = (0..20u32)
            .map(|i| SparseVector::from_set((i * 100..i * 100 + 50).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 2).sketch_all(&records);
        let cands = banded(&sk, 8, 8);
        assert!(
            cands.len() <= 2,
            "disjoint sets should almost never collide, got {}",
            cands.len()
        );
    }

    #[test]
    fn recall_formula_behaves() {
        let f = LshFamily::MinHash;
        let high = banded_recall(f, 0.9, 16, 4);
        let low = banded_recall(f, 0.2, 16, 4);
        assert!(high > 0.99, "high-sim recall {high}");
        assert!(low < 0.2, "low-sim recall {low}");
    }

    #[test]
    fn banded_pairs_are_sorted_unique() {
        let records: Vec<SparseVector> = (0..10u32)
            .map(|i| SparseVector::from_set((0..40 + i).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 3).sketch_all(&records);
        let cands = banded(&sk, 8, 8);
        for w in cands.windows(2) {
            assert!(w[0] < w[1], "output must be sorted and deduplicated");
        }
        for &(i, j) in &cands {
            assert!(i < j);
        }
    }

    #[test]
    fn banded_is_thread_count_invariant() {
        // Near-duplicate clusters generate heavy cross-band duplication;
        // every thread count must produce the same sorted unique list.
        let records: Vec<SparseVector> = (0..30u32)
            .map(|i| SparseVector::from_set((i / 3 * 40..i / 3 * 40 + 45).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 5).sketch_all(&records);
        let reference = banded_with(&sk, 16, 4, Some(1));
        for threads in [2, 3, 5, 16] {
            assert_eq!(
                banded_with(&sk, 16, 4, Some(threads)),
                reference,
                "banded join diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn kway_merge_dedup_merges_and_dedups() {
        let runs = vec![
            vec![(0, 1), (0, 3), (2, 5)],
            vec![(0, 1), (1, 2), (2, 5)],
            vec![],
            vec![(0, 2)],
        ];
        assert_eq!(
            kway_merge_dedup(runs),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 5)]
        );
    }
}
