//! Candidate-pair generation for all-pairs similarity search.
//!
//! BayesLSH filters candidates; something must generate them. Two
//! strategies are provided:
//!
//! * **Exhaustive** — every unordered pair. Exact recall; quadratic. Used
//!   for small data and ground-truth comparisons.
//! * **Banded LSH** — records sharing any band of `w` consecutive hashes
//!   become candidates (the classic LSH-join). Recall at similarity `s` is
//!   `1 − (1 − p(s)^w)^b` with `b` bands, so band width tunes the
//!   threshold the join targets.

use plasma_data::hash::FxHashMap;

use crate::sketch::SketchSet;

/// Generates all unordered pairs `(i, j)`, `i < j`.
pub fn exhaustive(n: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i as u32, j as u32));
        }
    }
    out
}

/// Banded LSH candidate generation over a sketch set.
///
/// `bands` bands of `band_width` hashes each are read from the front of the
/// sketches; records sharing a band key in the same bucket are paired.
/// Duplicate pairs across bands are deduplicated.
pub fn banded(sketches: &SketchSet, bands: usize, band_width: usize) -> Vec<(u32, u32)> {
    let n = sketches.len();
    let mut seen: plasma_data::hash::FxHashSet<(u32, u32)> =
        plasma_data::hash::FxHashSet::default();
    for band in 0..bands {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for i in 0..n {
            let key = sketches.band_key(i, band, band_width);
            buckets.entry(key).or_default().push(i as u32);
        }
        for (_, members) in buckets {
            if members.len() < 2 {
                continue;
            }
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    let (i, j) = (members[a].min(members[b]), members[a].max(members[b]));
                    seen.insert((i, j));
                }
            }
        }
    }
    let mut out: Vec<(u32, u32)> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Expected recall of a banded join at similarity `s`:
/// `1 − (1 − p(s)^w)^b`.
pub fn banded_recall(family: crate::family::LshFamily, s: f64, bands: usize, width: usize) -> f64 {
    let p = family.match_probability(s);
    1.0 - (1.0 - p.powi(width as i32)).powi(bands as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::LshFamily;
    use crate::sketch::Sketcher;
    use plasma_data::vector::SparseVector;

    #[test]
    fn exhaustive_counts() {
        assert_eq!(exhaustive(4).len(), 6);
        assert_eq!(exhaustive(0).len(), 0);
        assert_eq!(exhaustive(1).len(), 0);
    }

    #[test]
    fn banded_finds_near_duplicates() {
        // Three clones and one unrelated record: the clones must pair up.
        let a = SparseVector::from_set((0..50).collect());
        let b = SparseVector::from_set((0..50).collect());
        let c = SparseVector::from_set((0..50).collect());
        let z = SparseVector::from_set((500..550).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 64, 1).sketch_all(&[a, b, c, z]);
        let cands = banded(&sk, 8, 8);
        assert!(cands.contains(&(0, 1)));
        assert!(cands.contains(&(0, 2)));
        assert!(cands.contains(&(1, 2)));
    }

    #[test]
    fn banded_skips_dissimilar_pairs_mostly() {
        // 20 mutually-disjoint sets: expected candidates ≈ 0.
        let records: Vec<SparseVector> = (0..20u32)
            .map(|i| SparseVector::from_set((i * 100..i * 100 + 50).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 2).sketch_all(&records);
        let cands = banded(&sk, 8, 8);
        assert!(
            cands.len() <= 2,
            "disjoint sets should almost never collide, got {}",
            cands.len()
        );
    }

    #[test]
    fn recall_formula_behaves() {
        let f = LshFamily::MinHash;
        let high = banded_recall(f, 0.9, 16, 4);
        let low = banded_recall(f, 0.2, 16, 4);
        assert!(high > 0.99, "high-sim recall {high}");
        assert!(low < 0.2, "low-sim recall {low}");
    }

    #[test]
    fn banded_pairs_are_sorted_unique() {
        let records: Vec<SparseVector> = (0..10u32)
            .map(|i| SparseVector::from_set((0..40 + i).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 3).sketch_all(&records);
        let cands = banded(&sk, 8, 8);
        for w in cands.windows(2) {
            assert!(w[0] < w[1], "output must be sorted and deduplicated");
        }
        for &(i, j) in &cands {
            assert!(i < j);
        }
    }
}
