//! Candidate-pair generation for all-pairs similarity search.
//!
//! BayesLSH filters candidates; something must generate them. Two
//! strategies are provided:
//!
//! * **Exhaustive** — every unordered pair. Exact recall; quadratic. Used
//!   for small data and ground-truth comparisons.
//! * **Banded LSH** — records sharing any band of `w` consecutive hashes
//!   become candidates (the classic LSH-join). Recall at similarity `s` is
//!   `1 − (1 − p(s)^w)^b` with `b` bands, so band width tunes the
//!   threshold the join targets.
//!
//! # Skew-proof sharding
//!
//! Real high-dimensional corpora are heavy-tailed: one band key routinely
//! collects a large fraction of all records (near-duplicate clusters, a
//! dominant topic, degenerate band keys). A join that parallelizes only
//! *across* bands serializes on that hot bucket — the whole engine waits
//! on one worker enumerating `m·(m−1)/2` pairs. The banded join here
//! therefore shards **within** bands as well, in three phases:
//!
//! 1. **Bucket build** — band keys for all `bands × records` cells are
//!    computed into a flat table by record-sharded workers, then
//!    per-worker partial bucket maps are built over disjoint *key ranges*
//!    of each band (a multiplicative range partition of the `u64` key
//!    space), so no two workers ever own the same bucket.
//! 2. **Pair-range sharding** — every bucket's pair count is known up
//!    front (`m·(m−1)/2`, checked arithmetic). A [`ShardPolicy`] turns
//!    the bucket list into shards of bounded pair count: small buckets
//!    are grouped greedily, and a hot bucket is **split into disjoint
//!    triangular-index ranges** `[lo, hi)` over its pair enumeration —
//!    decoded back to `(row, col)` coordinates with exact integer
//!    arithmetic — so one dominant bucket fans out across every worker.
//! 3. **Dedup** — each shard emits a sorted duplicate-free run; runs are
//!    merged by the k-way heap dedup. The output is the sorted unique
//!    pair set, bit-identical to [`banded_sequential`] for every thread
//!    count and every policy.
//!
//! Cross-band duplicates are removed by the merge; within one band a
//! record holds exactly one key, so a band's pairs are duplicate-free by
//! construction and split shards need no per-shard dedup at all.
//!
//! # Epoch-persistent buckets
//!
//! For a *growing* corpus (streaming ingest), rebuilding every bucket on
//! every probe is `O(corpus)` work that re-derives identical state: a
//! record's band keys never change after ingest. [`BandBuckets`] caches
//! the per-band bucket maps and the canonical pair set across epochs, so
//! a post-ingest probe hashes only the new records and joins them against
//! the cached buckets — `O(new × bands)` instead of `O(corpus × bands)` —
//! while remaining bit-identical to a cold [`banded_sequential`] run.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use plasma_data::hash::FxHashMap;
use rayon::prelude::*;

use crate::resolve_parallelism;
use crate::sketch::SketchSet;

thread_local! {
    /// Reused band-key table, one per thread: every banded entry point
    /// needs a `bands × records`-shaped (or `records`-shaped) `u64`
    /// buffer, and an interactive session calls these entry points once
    /// per probe. Hoisting the buffer into thread-local scratch mirrors
    /// the `sketch_into` append scratch — steady-state probes allocate no
    /// key tables at all.
    static KEYS_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over a zeroed `len`-word slice drawn from [`KEYS_SCRATCH`].
///
/// The vector is moved *out* of the thread-local for the duration of the
/// call (and returned afterwards), so `f` may hand disjoint sub-slices to
/// parallel workers without holding a `RefCell` borrow across threads.
fn with_key_scratch<R>(len: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    let mut keys = KEYS_SCRATCH.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
    keys.clear();
    keys.resize(len, 0);
    let out = f(&mut keys);
    KEYS_SCRATCH.with(|cell| *cell.borrow_mut() = keys);
    out
}

/// Exact capacity for [`exhaustive`], `n·(n−1)/2`, computed with checked
/// arithmetic: when the multiply would overflow `usize` (an allocation no
/// machine can satisfy anyway), the pre-reservation is skipped entirely
/// and `Vec` growth takes over.
fn exhaustive_capacity(n: usize) -> usize {
    n.checked_mul(n.saturating_sub(1)).map_or(0, |p| p / 2)
}

/// Generates all unordered pairs `(i, j)`, `i < j`.
pub fn exhaustive(n: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(exhaustive_capacity(n));
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i as u32, j as u32));
        }
    }
    out
}

/// How banded candidate generation splits bucket pairing across workers.
///
/// The policy bounds the pair count a single shard (one worker's unit of
/// pairing work) may carry. Small buckets are grouped until the budget
/// fills; a bucket that is both **hot** (at least
/// [`bucket_split_members`](Self::bucket_split_members) members) and over
/// budget is split into disjoint triangular pair ranges of at most
/// [`max_pairs_per_shard`](Self::max_pairs_per_shard) pairs each.
///
/// The policy never changes the candidate set — only how its generation
/// is distributed. [`banded_with_policy`] returns bit-identical output
/// for every policy and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Minimum member count for a bucket to be split-eligible. Buckets
    /// below this stay whole (grouped with neighbors), whatever their
    /// pair count. Must be at least 2.
    pub bucket_split_members: usize,
    /// Pair budget per shard. With the default policy every shard carries
    /// at most this many pairs; a custom policy whose
    /// `bucket_split_members` threshold exceeds the budget can leave an
    /// over-budget bucket whole in its own shard. Must be at least 1.
    pub max_pairs_per_shard: usize,
    /// When set (via [`ShardPolicy::adaptive`]), the numeric knobs above
    /// are placeholders: the join derives the real pair budget from the
    /// measured total pair count at plan time ([`Self::resolved_for`]),
    /// targeting [`TARGET_SHARDS_PER_WORKER`] shards per worker.
    adaptive: bool,
}

/// Shards the adaptive policy aims to hand each worker. More than one so
/// an unlucky hot shard cannot straggle the whole join; not many more, so
/// per-shard overhead (staging buffers, merge runs) stays negligible.
const TARGET_SHARDS_PER_WORKER: u64 = 3;

/// Floor for the adaptively derived pair budget: below ~1k pairs the
/// per-shard fixed costs dominate the pairing work itself.
const MIN_ADAPTIVE_PAIRS: u64 = 1 << 10;

/// Ceiling for the adaptively derived pair budget: bounds the largest
/// serial pairing run (and staging buffer) any worker can be handed, even
/// on enormous corpora.
const MAX_ADAPTIVE_PAIRS: u64 = 1 << 22;

impl Default for ShardPolicy {
    /// `bucket_split_members = 256`, `max_pairs_per_shard = 32 768`. A
    /// 256-member bucket holds 32 640 pairs, so with the defaults every
    /// shard is bounded by the pair budget.
    fn default() -> Self {
        Self {
            bucket_split_members: 256,
            max_pairs_per_shard: 32_768,
            adaptive: false,
        }
    }
}

impl ShardPolicy {
    /// A policy with explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics when `bucket_split_members < 2` (a 1-member bucket has no
    /// pairs to split) or `max_pairs_per_shard == 0`.
    pub fn new(bucket_split_members: usize, max_pairs_per_shard: usize) -> Self {
        assert!(
            bucket_split_members >= 2,
            "buckets need at least 2 members to pair"
        );
        assert!(max_pairs_per_shard >= 1, "shards must hold at least 1 pair");
        Self {
            bucket_split_members,
            max_pairs_per_shard,
            adaptive: false,
        }
    }

    /// The sharding-off policy: every bucket stays whole and all buckets
    /// land in one shard — the parallel path degenerates to one worker
    /// pairing everything (bucket build still shards). Useful as the
    /// differential baseline and for measuring what sharding buys.
    pub fn never_split() -> Self {
        Self {
            bucket_split_members: usize::MAX,
            max_pairs_per_shard: usize::MAX,
            adaptive: false,
        }
    }

    /// The self-tuning policy: instead of a fixed pair budget, derive
    /// `max_pairs_per_shard` at plan time from the join's measured total
    /// pair count — `total_pairs / (workers × TARGET_SHARDS_PER_WORKER)`,
    /// clamped to `[2^10, 2^22]` — so small joins don't fragment into
    /// thousands of trivial shards and huge joins still load-balance.
    /// Every bucket is split-eligible (`bucket_split_members = 2`).
    ///
    /// Like every policy, this never changes the candidate set — only how
    /// its generation is distributed — so deriving the budget from the
    /// (thread-count-dependent) worker count is safe.
    pub fn adaptive() -> Self {
        Self {
            adaptive: true,
            ..Self::default()
        }
    }

    /// Whether this policy derives its pair budget at plan time.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Resolves an adaptive policy against a measured `total_pairs` and a
    /// `workers` count, returning the concrete fixed policy the shard
    /// planner runs with. Non-adaptive policies return themselves
    /// unchanged.
    pub fn resolved_for(self, total_pairs: u64, workers: usize) -> ShardPolicy {
        if !self.adaptive {
            return self;
        }
        let target_shards = (workers.max(1) as u64) * TARGET_SHARDS_PER_WORKER;
        let budget = (total_pairs / target_shards).clamp(MIN_ADAPTIVE_PAIRS, MAX_ADAPTIVE_PAIRS);
        ShardPolicy {
            bucket_split_members: 2,
            max_pairs_per_shard: budget as usize,
            adaptive: false,
        }
    }
}

/// Banded LSH candidate generation over a sketch set, using all cores and
/// the default [`ShardPolicy`].
///
/// `bands` bands of `band_width` hashes each are read from the front of the
/// sketches; records sharing a band key in the same bucket are paired.
/// Duplicate pairs across bands are deduplicated. Output is sorted,
/// unique, and independent of the thread count.
pub fn banded(sketches: &SketchSet, bands: usize, band_width: usize) -> Vec<(u32, u32)> {
    banded_with(sketches, bands, band_width, None)
}

/// [`banded`] with an explicit thread count (`None` = all cores,
/// `Some(1)` = sequential) and the default [`ShardPolicy`].
pub fn banded_with(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    parallelism: Option<usize>,
) -> Vec<(u32, u32)> {
    banded_with_policy(
        sketches,
        bands,
        band_width,
        parallelism,
        ShardPolicy::default(),
    )
}

/// [`banded`] with an explicit thread count and shard policy. The output
/// is the sorted unique candidate set, bit-identical to
/// [`banded_sequential`] at every `(parallelism, policy)` combination —
/// pinned by `crates/lsh/tests/banded_differential.rs`.
pub fn banded_with_policy(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    parallelism: Option<usize>,
    policy: ShardPolicy,
) -> Vec<(u32, u32)> {
    let threads = resolve_parallelism(parallelism);
    if threads <= 1 || sketches.len() < 2 || bands == 0 {
        return banded_sequential(sketches, bands, band_width);
    }
    banded_sharded(sketches, bands, band_width, threads, policy)
}

/// The sequential reference: one pass per band into a reused bucket map
/// (capacity-hinted to the record count; member vectors are recycled
/// through a pool instead of reallocated per band), pairs accumulated
/// into one buffer, then a single global sort + dedup. This is the
/// canonical output every sharded configuration must reproduce exactly.
pub fn banded_sequential(sketches: &SketchSet, bands: usize, band_width: usize) -> Vec<(u32, u32)> {
    let n = sketches.len();
    let mut out: Vec<(u32, u32)> = Vec::new();
    if n < 2 || bands == 0 {
        return out;
    }
    with_key_scratch(n, |keys| {
        // Capacity hint: at most n distinct keys per band; the map (and the
        // recycled member vectors) are reused across every band.
        let mut buckets: FxHashMap<u64, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(n, Default::default());
        let mut pool: Vec<Vec<u32>> = Vec::new();
        for band in 0..bands {
            sketches.band_keys_into(band, band_width, 0, keys);
            for (i, &key) in keys.iter().enumerate() {
                buckets
                    .entry(key)
                    .or_insert_with(|| pool.pop().unwrap_or_default())
                    .push(i as u32);
            }
            for (_, mut members) in buckets.drain() {
                if members.len() >= 2 {
                    emit_bucket(&members, &mut out);
                }
                members.clear();
                pool.push(members);
            }
        }
    });
    out.sort_unstable();
    out.dedup();
    out
}

/// Shape of one band's bucket-and-shard structure under a policy, for
/// bench/telemetry introspection (`repro bench` publishes these as the
/// `banded_skew` fields). Computed from a sequential bucket build, so the
/// numbers are deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct BandedShardStats {
    /// Records in the sketch set.
    pub records: u64,
    /// Buckets with at least 2 members, across all bands.
    pub buckets: u64,
    /// Members of the largest single bucket.
    pub hot_bucket_members: u64,
    /// Pairs inside that largest bucket.
    pub hot_bucket_pairs: u64,
    /// Total pairs across all buckets (pre-dedup generation work).
    pub total_pairs: u64,
    /// Shards the policy produces.
    pub shards: u64,
    /// Pairs carried by the largest shard — the longest serial pairing
    /// any single worker can be handed. Sharding is doing its job when
    /// this stays near `max_pairs_per_shard` while `hot_bucket_pairs`
    /// dwarfs it.
    pub largest_shard_pairs: u64,
}

/// Computes [`BandedShardStats`] for a join configuration without
/// generating any pairs.
pub fn banded_shard_stats(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    policy: ShardPolicy,
) -> BandedShardStats {
    let n = sketches.len();
    let mut stats = BandedShardStats {
        records: n as u64,
        ..Default::default()
    };
    if n < 2 || bands == 0 {
        return stats;
    }
    let mut counts: FxHashMap<u64, usize> =
        FxHashMap::with_capacity_and_hasher(n, Default::default());
    let mut sizes: Vec<usize> = Vec::new();
    with_key_scratch(n, |keys| {
        for band in 0..bands {
            sketches.band_keys_into(band, band_width, 0, keys);
            for &key in keys.iter() {
                *counts.entry(key).or_insert(0) += 1;
            }
            sizes.extend(counts.drain().map(|(_, c)| c).filter(|&c| c >= 2));
        }
    });
    stats.buckets = sizes.len() as u64;
    for &m in &sizes {
        let pairs = bucket_pair_count(m);
        stats.total_pairs += pairs;
        if m as u64 > stats.hot_bucket_members {
            stats.hot_bucket_members = m as u64;
            stats.hot_bucket_pairs = pairs;
        }
    }
    // An adaptive policy is resolved against the process-default worker
    // count — the same count `banded` itself would use with
    // `parallelism: None` — so stats reflect the plan a default-threaded
    // join would run.
    let policy = policy.resolved_for(stats.total_pairs, resolve_parallelism(None));
    let shards = plan_shards(&sizes, policy);
    stats.shards = shards.len() as u64;
    stats.largest_shard_pairs = shards
        .iter()
        .map(|s| match *s {
            Shard::Whole { first, count } => sizes[first..first + count]
                .iter()
                .map(|&m| bucket_pair_count(m))
                .sum(),
            Shard::Slice { lo, hi, .. } => hi - lo,
        })
        .max()
        .unwrap_or(0);
    stats
}

/// One unit of pairing work in the sharded join.
#[derive(Debug, Clone, Copy)]
enum Shard {
    /// A run of consecutive whole buckets, grouped under the pair budget.
    Whole {
        /// Index of the first bucket in the group.
        first: usize,
        /// Number of consecutive buckets grouped.
        count: usize,
    },
    /// A triangular pair-index range `[lo, hi)` of one hot bucket.
    Slice {
        /// Index of the split bucket.
        bucket: usize,
        /// First pair index (inclusive).
        lo: u64,
        /// Last pair index (exclusive).
        hi: u64,
    },
}

/// `m·(m−1)/2` in `u128` intermediate arithmetic, so even a
/// `u32::MAX`-member bucket (the largest addressable with `u32` record
/// ids) cannot overflow en route to the `u64` result.
fn bucket_pair_count(members: usize) -> u64 {
    let m = members as u128;
    u64::try_from(m * m.saturating_sub(1) / 2).expect("bucket pair count overflows u64")
}

/// Pairs in triangular rows `< a` of an `m`-member bucket:
/// `a·(2m − a − 1)/2`, exact in `u128`.
fn tri_prefix(m: u64, a: u64) -> u64 {
    debug_assert!(a < m);
    let (m, a) = (m as u128, a as u128);
    (a * (2 * m - a - 1) / 2) as u64
}

/// Decodes linear pair index `t` of an `m`-member bucket's row-major
/// triangular enumeration back to `(row, col)`, `row < col < m`. Integer
/// binary search — no floating point, exact for every representable `t`.
fn tri_decode(m: u64, t: u64) -> (u64, u64) {
    debug_assert!(m >= 2 && t < bucket_pair_count(m as usize));
    let (mut lo, mut hi) = (0u64, m - 2);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if tri_prefix(m, mid) <= t {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (lo, lo + 1 + (t - tri_prefix(m, lo)))
}

/// Emits every pair of one bucket. Members arrive in ascending record
/// order, so the run appended is sorted and `i < j` holds by construction.
fn emit_bucket(members: &[u32], out: &mut Vec<(u32, u32)>) {
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
    out.reserve(bucket_pair_count(members.len()) as usize);
    for a in 0..members.len() {
        for b in (a + 1)..members.len() {
            out.push((members[a], members[b]));
        }
    }
}

/// Emits the triangular pair range `[lo, hi)` of one bucket: decode the
/// start coordinate once, then walk the enumeration. Sorted and
/// duplicate-free by construction.
fn emit_slice(members: &[u32], lo: u64, hi: u64, out: &mut Vec<(u32, u32)>) {
    if hi <= lo {
        return;
    }
    let m = members.len() as u64;
    out.reserve((hi - lo) as usize);
    let (mut a, mut b) = tri_decode(m, lo);
    for _ in lo..hi {
        out.push((members[a as usize], members[b as usize]));
        b += 1;
        if b == m {
            a += 1;
            b = a + 1;
        }
    }
}

/// The multiplicative range partition of the `u64` key space into
/// `partitions` contiguous ranges: workers own disjoint key ranges, so
/// partial bucket maps merge by concatenation.
fn key_partition(key: u64, partitions: usize) -> usize {
    ((key as u128 * partitions as u128) >> 64) as usize
}

/// Turns the bucket size list into shards under `policy`: consecutive
/// small buckets group greedily up to the pair budget; hot buckets split
/// into triangular ranges. Every bucket's pairs land in exactly one
/// shard's ranges, so shard runs partition the (band-local) pair set.
fn plan_shards(sizes: &[usize], policy: ShardPolicy) -> Vec<Shard> {
    let max_pairs = policy.max_pairs_per_shard.max(1) as u64;
    let mut shards = Vec::new();
    let (mut group_first, mut group_count, mut group_pairs) = (0usize, 0usize, 0u64);
    for (b, &m) in sizes.iter().enumerate() {
        let pairs = bucket_pair_count(m);
        if m >= policy.bucket_split_members && pairs > max_pairs {
            if group_count > 0 {
                shards.push(Shard::Whole {
                    first: group_first,
                    count: group_count,
                });
                group_count = 0;
                group_pairs = 0;
            }
            let mut lo = 0u64;
            while lo < pairs {
                let hi = (lo.saturating_add(max_pairs)).min(pairs);
                shards.push(Shard::Slice { bucket: b, lo, hi });
                lo = hi;
            }
        } else {
            if group_count > 0 && group_pairs.saturating_add(pairs) > max_pairs {
                shards.push(Shard::Whole {
                    first: group_first,
                    count: group_count,
                });
                group_count = 0;
                group_pairs = 0;
            }
            if group_count == 0 {
                group_first = b;
            }
            group_count += 1;
            group_pairs = group_pairs.saturating_add(pairs);
        }
    }
    if group_count > 0 {
        shards.push(Shard::Whole {
            first: group_first,
            count: group_count,
        });
    }
    shards
}

/// The sharded parallel join (phases 1–3 of the module docs). `threads`
/// is already resolved and `> 1`.
fn banded_sharded(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    threads: usize,
    policy: ShardPolicy,
) -> Vec<(u32, u32)> {
    let n = sketches.len();

    // Phases 1a + 1b run inside the thread-local key scratch (the table is
    // dead once buckets exist; it returns to the scratch slot, not the
    // allocator, so the next probe's build is allocation-free).
    let total = bands
        .checked_mul(n)
        .expect("band-key table size overflows usize");
    let buckets: Vec<Vec<u32>> = with_key_scratch(total, |keys| {
        // Phase 1a: the flat band-key table, record-sharded across workers
        // into disjoint slices.
        let key_chunk = total.div_ceil(threads);
        keys.par_chunks_mut(key_chunk)
            .enumerate_for_each(|chunk_idx, slice| {
                let mut idx = chunk_idx * key_chunk;
                let mut off = 0;
                while off < slice.len() {
                    let (band, first) = (idx / n, idx % n);
                    let take = (n - first).min(slice.len() - off);
                    sketches.band_keys_into(band, band_width, first, &mut slice[off..off + take]);
                    idx += take;
                    off += take;
                }
            });

        // Phase 1b: per-worker partial bucket maps over disjoint
        // (band, key-range) cells. When bands alone undersupply the workers,
        // each band's key space is range-partitioned so the bucket build
        // itself spreads out. The map (and its allocation) is reused across
        // one worker's cells; member vectors move out through `drain`.
        let partitions = threads.div_ceil(bands.min(threads));
        let cells: Vec<(usize, usize)> = (0..bands)
            .flat_map(|band| (0..partitions).map(move |p| (band, p)))
            .collect();
        let cell_chunk = cells.len().div_ceil(threads);
        let nested_buckets: Vec<Vec<Vec<u32>>> = cells
            .par_chunks(cell_chunk)
            .map(|chunk| {
                let mut local: Vec<Vec<u32>> = Vec::new();
                let mut map: FxHashMap<u64, Vec<u32>> =
                    FxHashMap::with_capacity_and_hasher(n / partitions + 1, Default::default());
                for &(band, p) in chunk {
                    let band_keys = &keys[band * n..(band + 1) * n];
                    if partitions == 1 {
                        for (i, &key) in band_keys.iter().enumerate() {
                            map.entry(key).or_default().push(i as u32);
                        }
                    } else {
                        for (i, &key) in band_keys.iter().enumerate() {
                            if key_partition(key, partitions) == p {
                                map.entry(key).or_default().push(i as u32);
                            }
                        }
                    }
                    local.extend(map.drain().map(|(_, m)| m).filter(|m| m.len() >= 2));
                }
                local
            })
            .collect();
        nested_buckets.into_iter().flatten().collect()
    });
    if buckets.is_empty() {
        return Vec::new();
    }

    // Phase 2: shard plan from the bucket sizes; an adaptive policy
    // derives its pair budget from the measured total here.
    let sizes: Vec<usize> = buckets.iter().map(Vec::len).collect();
    let total_pairs: u64 = sizes.iter().map(|&m| bucket_pair_count(m)).sum();
    let policy = policy.resolved_for(total_pairs, threads);
    let shards = plan_shards(&sizes, policy);

    // Phase 3: emit one sorted run per shard (worker-local staging buffer
    // reused across a worker's shards; emitted runs are exact-sized), then
    // k-way merge-dedup into the canonical sorted unique pair set.
    let shard_chunk = shards.len().div_ceil(threads);
    let nested_runs: Vec<Vec<Vec<(u32, u32)>>> = shards
        .par_chunks(shard_chunk)
        .map(|chunk| {
            let mut scratch: Vec<(u32, u32)> = Vec::new();
            let mut runs: Vec<Vec<(u32, u32)>> = Vec::with_capacity(chunk.len());
            for shard in chunk {
                scratch.clear();
                match *shard {
                    Shard::Whole { first, count } => {
                        for members in &buckets[first..first + count] {
                            emit_bucket(members, &mut scratch);
                        }
                        // Grouped buckets may interleave records and (across
                        // a band boundary) repeat a pair; canonicalize the
                        // run here so the merge sees sorted unique input.
                        scratch.sort_unstable();
                        scratch.dedup();
                    }
                    Shard::Slice { bucket, lo, hi } => {
                        emit_slice(&buckets[bucket], lo, hi, &mut scratch);
                    }
                }
                runs.push(scratch.as_slice().to_vec());
            }
            runs
        })
        .collect();
    kway_merge_dedup(nested_runs.into_iter().flatten().collect())
}

/// Merges sorted runs into one sorted, duplicate-free vector.
fn kway_merge_dedup(runs: Vec<Vec<(u32, u32)>>) -> Vec<(u32, u32)> {
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.into_iter().next().expect("one run"),
        _ => {}
    }
    let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> = BinaryHeap::new();
    let mut cursors = vec![0usize; runs.len()];
    for (r, run) in runs.iter().enumerate() {
        if let Some(&first) = run.first() {
            heap.push(Reverse((first, r)));
        }
    }
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(runs.iter().map(Vec::len).max().unwrap_or(0));
    while let Some(Reverse((pair, r))) = heap.pop() {
        if out.last() != Some(&pair) {
            out.push(pair);
        }
        cursors[r] += 1;
        if let Some(&next) = runs[r].get(cursors[r]) {
            heap.push(Reverse((next, r)));
        }
    }
    out
}

/// Epoch-persistent band buckets: the incremental alternative to
/// rebuilding every bucket map from scratch on each probe of a growing
/// corpus.
///
/// A record's band key depends only on its own sketch, so bucket
/// membership never changes once a record is ingested — an epoch that
/// appends `k` records only *adds* those records to existing (or new)
/// buckets. `BandBuckets` keeps one bucket map per band across epochs
/// plus the canonical sorted-unique pair set for everything covered so
/// far; [`extend_and_generate`](Self::extend_and_generate) hashes only
/// the records past the covered watermark (`O(new × bands)` key work),
/// pairs each against its bucket's prior members, and merges the fresh
/// pairs into the cached set. The result is bit-identical to
/// [`banded_sequential`] over the full corpus at every epoch — same
/// pairs, same canonical order — because both compute the sorted unique
/// union of per-bucket pair sets, and bucket contents are
/// probe-order-independent.
///
/// The cache is pure acceleration state: dropping it (capacity pressure,
/// shape change) only costs a cold rebuild, never a different answer.
#[derive(Debug)]
pub struct BandBuckets {
    bands: usize,
    band_width: usize,
    /// Records `[0, covered)` are already hashed into `maps` and paired
    /// into `pairs`.
    covered: usize,
    /// One `key → members` map per band; member lists are in ascending
    /// record order by construction (records are appended in id order).
    maps: Vec<FxHashMap<u64, Vec<u32>>>,
    /// Per-band rebuild watermark: records `[0, band_covered[b])` are
    /// hashed into `maps[b]`. Equals `covered` for warm bands; partial
    /// eviction clears a band's map and resets its watermark to 0, and
    /// the next extension re-buckets that band's prefix *silently* (its
    /// mutual pairs are already in `pairs`) before pairing new records.
    band_covered: Vec<usize>,
    /// Cumulative fresh pairs each band has contributed across all
    /// extensions — the coldness ranking partial eviction uses. Counts
    /// depend only on the ingest history (never on probe order or
    /// eviction), so eviction choices are deterministic.
    band_heat: Vec<u64>,
    /// The canonical sorted-unique candidate set for `[0, covered)`,
    /// shared with callers so a warm re-probe is one `Arc` clone.
    pairs: Arc<Vec<(u32, u32)>>,
    /// The fresh pairs produced by the most recent extension — exactly
    /// the candidates that touch a record in `delta_range` — sorted and
    /// deduplicated, shared so watch evaluation is one `Arc` clone.
    delta: Arc<Vec<(u32, u32)>>,
    /// The `[from, to)` record range `delta` covers: `from` was the
    /// watermark before the extension, `to` after.
    delta_range: (usize, usize),
    /// Estimated heap footprint (maps + member lists + pairs), refreshed
    /// after every extension so owners can byte-account the cache.
    bytes: usize,
}

impl BandBuckets {
    /// An empty cache for a `(bands, band_width)` join shape.
    pub fn new(bands: usize, band_width: usize) -> Self {
        let mut cache = Self {
            bands,
            band_width,
            covered: 0,
            maps: (0..bands).map(|_| FxHashMap::default()).collect(),
            band_covered: vec![0; bands],
            band_heat: vec![0; bands],
            pairs: Arc::new(Vec::new()),
            delta: Arc::new(Vec::new()),
            delta_range: (0, 0),
            bytes: 0,
        };
        cache.recount_bytes();
        cache
    }

    /// The join shape this cache was built for. A probe with a different
    /// shape must rebuild from scratch.
    pub fn matches_shape(&self, bands: usize, band_width: usize) -> bool {
        self.bands == bands && self.band_width == band_width
    }

    /// Records already hashed and paired. A sketch snapshot with fewer
    /// records than this is *older* than the cache (pinned before a
    /// concurrent grow) and cannot be served from it.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Estimated heap bytes held by the cached maps, member lists, and
    /// pair set.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Extends the cache to cover all of `sketches` and returns the full
    /// canonical candidate set — bit-identical to
    /// `banded_sequential(sketches, bands, band_width)`.
    ///
    /// Warm path (`covered == sketches.len()`): one `Arc` clone, zero
    /// hashing. Incremental path: `O(new × bands)` band keys plus one
    /// linear merge of the fresh pairs into the cached set.
    ///
    /// # Panics
    ///
    /// Debug-asserts `covered() <= sketches.len()`; callers holding an
    /// older snapshot than the cache must take a cold path instead.
    pub fn extend_and_generate(&mut self, sketches: &SketchSet) -> Arc<Vec<(u32, u32)>> {
        let n = sketches.len();
        debug_assert!(
            self.covered <= n,
            "bucket cache covers {} records but the snapshot has {n}",
            self.covered
        );
        if self.covered == n || self.bands == 0 {
            return Arc::clone(&self.pairs);
        }
        let from = self.covered;
        let mut keys: Vec<u64> = Vec::new();
        let mut fresh: Vec<(u32, u32)> = Vec::new();
        for (band, map) in self.maps.iter_mut().enumerate() {
            // An evicted band restarts from watermark 0: its prefix
            // records re-join their buckets without emitting pairs
            // (those pairs are already in `pairs` — the same silent
            // prefix pass `banded_delta` does cold), so eviction can
            // never change outputs.
            let start = self.band_covered[band];
            keys.clear();
            keys.resize(n - start, 0);
            sketches.band_keys_into(band, self.band_width, start, &mut keys);
            let mut heat = 0u64;
            for (off, &key) in keys.iter().enumerate() {
                let r = (start + off) as u32;
                let members = map.entry(key).or_default();
                if start + off >= from {
                    // Every prior member has a smaller id, so (m, r) is
                    // already in canonical i < j orientation.
                    heat += members.len() as u64;
                    fresh.extend(members.iter().map(|&m| (m, r)));
                }
                members.push(r);
            }
            self.band_covered[band] = n;
            self.band_heat[band] += heat;
        }
        self.covered = n;
        fresh.sort_unstable();
        fresh.dedup();
        if !fresh.is_empty() {
            self.pairs = Arc::new(merge_sorted_unique(&self.pairs, &fresh));
        }
        self.delta = Arc::new(fresh);
        self.delta_range = (from, n);
        self.recount_bytes();
        Arc::clone(&self.pairs)
    }

    /// The new-records-only candidate slice of the most recent extension,
    /// if it covered exactly `[from, to)`: every cached pair that touches
    /// a record in that range, sorted unique — bit-identical to
    /// [`banded_delta`] over the same snapshot. Returns `None` when the
    /// cache's last extension covered a different range (the caller must
    /// fall back to the cold [`banded_delta`] path).
    pub fn delta_covering(&self, from: usize, to: usize) -> Option<Arc<Vec<(u32, u32)>>> {
        (self.delta_range == (from, to)).then(|| Arc::clone(&self.delta))
    }

    /// Number of bands whose bucket maps are currently resident (their
    /// watermark has kept up with `covered`). Bands partial eviction has
    /// cleared don't count until an extension rebuilds them.
    pub fn resident_bands(&self) -> usize {
        self.band_covered
            .iter()
            .filter(|&&w| w == self.covered && self.covered > 0)
            .count()
    }

    /// Partially evicts under memory pressure: clears the *coldest*
    /// bands' bucket maps — lowest cumulative fresh-pair contribution,
    /// ties broken by lower band index — until the estimated footprint
    /// fits `target_bytes`, keeping warm bands and the canonical
    /// pair/delta sets intact. Returns the number of bands evicted.
    ///
    /// Outputs are unaffected: an evicted band's watermark resets to 0,
    /// and the next extension re-buckets its prefix silently (no pair
    /// emission — see [`extend_and_generate`](Self::extend_and_generate)),
    /// so the cache keeps producing exactly the [`banded_sequential`]
    /// pair set. The cost of eviction is re-hashing the evicted bands'
    /// prefixes on the next growth — not a full cache rebuild. When even
    /// clearing every map cannot fit (the pair sets alone exceed the
    /// cap), the caller's final rung is dropping the whole cache.
    pub fn evict_coldest_bands(&mut self, target_bytes: usize) -> usize {
        let mut order: Vec<usize> = (0..self.bands).collect();
        order.sort_by_key(|&b| (self.band_heat[b], b));
        let mut evicted = 0;
        for &b in &order {
            if self.bytes <= target_bytes {
                break;
            }
            if self.maps[b].is_empty() && self.band_covered[b] == 0 {
                continue;
            }
            self.maps[b] = FxHashMap::default();
            self.band_covered[b] = 0;
            evicted += 1;
            self.recount_bytes();
        }
        evicted
    }

    /// Re-estimates the cache's heap footprint from current capacities.
    fn recount_bytes(&mut self) {
        let mut bytes = std::mem::size_of::<Self>();
        for map in &self.maps {
            bytes += map.capacity() * std::mem::size_of::<(u64, Vec<u32>)>();
            bytes += map
                .values()
                .map(|m| m.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>();
        }
        bytes += self.band_covered.capacity() * std::mem::size_of::<usize>();
        bytes += self.band_heat.capacity() * std::mem::size_of::<u64>();
        bytes += self.pairs.capacity() * std::mem::size_of::<(u32, u32)>();
        bytes += self.delta.capacity() * std::mem::size_of::<(u32, u32)>();
        self.bytes = bytes;
    }
}

/// The new-records-only slice of a banded join: every candidate pair that
/// touches a record in `[from, n)`, computed cold — prefix records
/// `[0, from)` only *populate* buckets (no pairs are emitted among them),
/// then each new record pairs against its bucket's prior members. Output
/// is sorted unique, bit-identical to filtering
/// `banded_sequential(sketches, bands, band_width)` down to pairs with
/// `j >= from` — the fallback [`BandBuckets::delta_covering`] equivalence
/// when no warm bucket cache covers the requested range (shape change,
/// capacity drop, or a watch registered against a cold cache).
pub fn banded_delta(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    from: usize,
) -> Vec<(u32, u32)> {
    let n = sketches.len();
    let mut out: Vec<(u32, u32)> = Vec::new();
    if n < 2 || bands == 0 || from >= n {
        return out;
    }
    with_key_scratch(n, |keys| {
        let mut buckets: FxHashMap<u64, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(n, Default::default());
        let mut pool: Vec<Vec<u32>> = Vec::new();
        for band in 0..bands {
            sketches.band_keys_into(band, band_width, 0, keys);
            // Prefix records join buckets silently: their mutual pairs
            // belong to earlier epochs, not this delta.
            for (i, &key) in keys[..from].iter().enumerate() {
                buckets
                    .entry(key)
                    .or_insert_with(|| pool.pop().unwrap_or_default())
                    .push(i as u32);
            }
            // New records pair against every prior member (all of which
            // have smaller ids, so (m, r) is canonical i < j), then join
            // the bucket themselves so new×new pairs are emitted too.
            for (off, &key) in keys[from..].iter().enumerate() {
                let r = (from + off) as u32;
                let members = buckets
                    .entry(key)
                    .or_insert_with(|| pool.pop().unwrap_or_default());
                out.extend(members.iter().map(|&m| (m, r)));
                members.push(r);
            }
            for (_, mut members) in buckets.drain() {
                members.clear();
                pool.push(members);
            }
        }
    });
    out.sort_unstable();
    out.dedup();
    out
}

/// Merges two sorted duplicate-free pair runs into one sorted
/// duplicate-free vector (two-cursor merge; exact-sized upper bound).
fn merge_sorted_unique(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Expected recall of a banded join at similarity `s`:
/// `1 − (1 − p(s)^w)^b`.
pub fn banded_recall(family: crate::family::LshFamily, s: f64, bands: usize, width: usize) -> f64 {
    let p = family.match_probability(s);
    1.0 - (1.0 - p.powi(width as i32)).powi(bands as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::LshFamily;
    use crate::sketch::Sketcher;
    use plasma_data::vector::SparseVector;

    #[test]
    fn exhaustive_counts() {
        assert_eq!(exhaustive(4).len(), 6);
        assert_eq!(exhaustive(0).len(), 0);
        assert_eq!(exhaustive(1).len(), 0);
    }

    #[test]
    fn exhaustive_capacity_is_exact_and_overflow_safe() {
        // Exact for representable sizes (matches the generated length)…
        for n in [0usize, 1, 2, 4, 100] {
            assert_eq!(exhaustive_capacity(n), exhaustive(n).len());
        }
        // …and degrades to no pre-reservation when n·(n−1) would overflow
        // usize, instead of panicking (debug) or requesting an absurd
        // allocation (release).
        for n in [usize::MAX, u32::MAX as usize + 2, 1 << 33] {
            assert_eq!(exhaustive_capacity(n), 0, "n = {n:#x}");
        }
        // Just below the overflow boundary the formula still computes.
        let n = 1usize << 32;
        assert_eq!(exhaustive_capacity(n), (n / 2) * (n - 1));
    }

    #[test]
    fn bucket_pair_count_is_exact_and_overflow_safe() {
        assert_eq!(bucket_pair_count(0), 0);
        assert_eq!(bucket_pair_count(1), 0);
        assert_eq!(bucket_pair_count(2), 1);
        assert_eq!(bucket_pair_count(1000), 499_500);
        // A u32::MAX-member bucket — the largest addressable with u32
        // record ids — computes without overflow:
        // (2^32 − 1)(2^32 − 2)/2 = 2^63 − 3·2^31 + 1.
        assert_eq!(
            bucket_pair_count(u32::MAX as usize),
            (1u64 << 63) - 3 * (1u64 << 31) + 1
        );
    }

    #[test]
    fn tri_decode_inverts_the_enumeration() {
        for m in [2u64, 3, 4, 7, 100] {
            let mut t = 0u64;
            for a in 0..m {
                for b in (a + 1)..m {
                    assert_eq!(tri_decode(m, t), (a, b), "m={m} t={t}");
                    t += 1;
                }
            }
            assert_eq!(t, bucket_pair_count(m as usize));
        }
    }

    #[test]
    fn emit_slice_ranges_tile_the_bucket() {
        let members: Vec<u32> = vec![3, 8, 11, 20, 21, 33, 40];
        let mut whole = Vec::new();
        emit_bucket(&members, &mut whole);
        let total = bucket_pair_count(members.len());
        for step in [1u64, 2, 5, total] {
            let mut tiled = Vec::new();
            let mut lo = 0;
            while lo < total {
                let hi = (lo + step).min(total);
                emit_slice(&members, lo, hi, &mut tiled);
                lo = hi;
            }
            assert_eq!(tiled, whole, "step {step}");
        }
    }

    #[test]
    fn plan_shards_bounds_every_shard_with_default_policy() {
        let policy = ShardPolicy::default();
        // One hot bucket (1000 members) among small ones.
        let sizes = vec![3usize, 1000, 2, 2, 300, 5];
        let shards = plan_shards(&sizes, policy);
        let hot_pairs = bucket_pair_count(1000);
        let max = policy.max_pairs_per_shard as u64;
        assert!(shards.len() as u64 >= hot_pairs / max);
        let mut covered = 0u64;
        for s in &shards {
            let pairs = match *s {
                Shard::Whole { first, count } => sizes[first..first + count]
                    .iter()
                    .map(|&m| bucket_pair_count(m))
                    .sum(),
                Shard::Slice { lo, hi, .. } => hi - lo,
            };
            assert!(pairs <= max, "{s:?} carries {pairs} pairs");
            covered += pairs;
        }
        let total: u64 = sizes.iter().map(|&m| bucket_pair_count(m)).sum();
        assert_eq!(covered, total, "shards must tile every pair exactly once");
    }

    #[test]
    fn never_split_policy_yields_one_shard() {
        let shards = plan_shards(&[10, 4000, 7], ShardPolicy::never_split());
        assert_eq!(shards.len(), 1);
        match shards[0] {
            Shard::Whole { first: 0, count: 3 } => {}
            other => panic!("expected one whole-group shard, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 members")]
    fn shard_policy_rejects_unpairable_split_threshold() {
        let _ = ShardPolicy::new(1, 64);
    }

    #[test]
    fn banded_finds_near_duplicates() {
        // Three clones and one unrelated record: the clones must pair up.
        let a = SparseVector::from_set((0..50).collect());
        let b = SparseVector::from_set((0..50).collect());
        let c = SparseVector::from_set((0..50).collect());
        let z = SparseVector::from_set((500..550).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 64, 1).sketch_all(&[a, b, c, z]);
        let cands = banded(&sk, 8, 8);
        assert!(cands.contains(&(0, 1)));
        assert!(cands.contains(&(0, 2)));
        assert!(cands.contains(&(1, 2)));
    }

    #[test]
    fn banded_skips_dissimilar_pairs_mostly() {
        // 20 mutually-disjoint sets: expected candidates ≈ 0.
        let records: Vec<SparseVector> = (0..20u32)
            .map(|i| SparseVector::from_set((i * 100..i * 100 + 50).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 2).sketch_all(&records);
        let cands = banded(&sk, 8, 8);
        assert!(
            cands.len() <= 2,
            "disjoint sets should almost never collide, got {}",
            cands.len()
        );
    }

    #[test]
    fn recall_formula_behaves() {
        let f = LshFamily::MinHash;
        let high = banded_recall(f, 0.9, 16, 4);
        let low = banded_recall(f, 0.2, 16, 4);
        assert!(high > 0.99, "high-sim recall {high}");
        assert!(low < 0.2, "low-sim recall {low}");
    }

    #[test]
    fn banded_pairs_are_sorted_unique() {
        let records: Vec<SparseVector> = (0..10u32)
            .map(|i| SparseVector::from_set((0..40 + i).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 3).sketch_all(&records);
        let cands = banded(&sk, 8, 8);
        for w in cands.windows(2) {
            assert!(w[0] < w[1], "output must be sorted and deduplicated");
        }
        for &(i, j) in &cands {
            assert!(i < j);
        }
    }

    #[test]
    fn banded_is_thread_count_invariant() {
        // Near-duplicate clusters generate heavy cross-band duplication;
        // every thread count must produce the same sorted unique list.
        let records: Vec<SparseVector> = (0..30u32)
            .map(|i| SparseVector::from_set((i / 3 * 40..i / 3 * 40 + 45).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 5).sketch_all(&records);
        let reference = banded_with(&sk, 16, 4, Some(1));
        for threads in [2, 3, 5, 16] {
            assert_eq!(
                banded_with(&sk, 16, 4, Some(threads)),
                reference,
                "banded join diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn kway_merge_dedup_merges_and_dedups() {
        let runs = vec![
            vec![(0, 1), (0, 3), (2, 5)],
            vec![(0, 1), (1, 2), (2, 5)],
            vec![],
            vec![(0, 2)],
        ];
        assert_eq!(
            kway_merge_dedup(runs),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 5)]
        );
    }

    #[test]
    fn empty_and_singleton_datasets_yield_empty_candidates() {
        // The 0-record/1-record allocation guard: capacity hints must not
        // assume a non-empty dataset, on either path or any policy.
        for n in [0usize, 1] {
            let records: Vec<SparseVector> = (0..n as u32)
                .map(|_| SparseVector::from_set(vec![1, 2, 3]))
                .collect();
            let sk = Sketcher::new(LshFamily::MinHash, 64, 3).sketch_all(&records);
            assert!(banded_sequential(&sk, 8, 8).is_empty());
            for policy in [ShardPolicy::default(), ShardPolicy::never_split()] {
                assert!(banded_with_policy(&sk, 8, 8, Some(4), policy).is_empty());
            }
            let stats = banded_shard_stats(&sk, 8, 8, ShardPolicy::default());
            assert_eq!(stats.records, n as u64);
            assert_eq!(stats.shards, 0);
            assert_eq!(stats.total_pairs, 0);
        }
    }

    #[test]
    fn bucket_cache_matches_cold_reference_at_every_epoch() {
        // Near-duplicate clusters ingested in three uneven installments
        // (including a 1-record batch): after each epoch the incremental
        // cache must return exactly the cold sequential reference.
        let records: Vec<SparseVector> = (0..45u32)
            .map(|i| {
                let mut items: Vec<u32> = (i / 3 * 40..i / 3 * 40 + 45).collect();
                items.push(3000 + i % 7);
                SparseVector::from_set(items)
            })
            .collect();
        let sketcher = Sketcher::new(LshFamily::MinHash, 64, 7);
        let mut set = sketcher.sketch_all(&records[..10]);
        let mut cache = BandBuckets::new(8, 8);
        for (lo, hi) in [(0usize, 10usize), (10, 11), (11, 30), (30, 45)] {
            if lo > 0 {
                sketcher.extend_batch(&records[lo..hi], &mut set);
            }
            let cached = cache.extend_and_generate(&set);
            assert_eq!(
                *cached,
                banded_sequential(&set, 8, 8),
                "epoch covering {hi} records diverged from cold reference"
            );
            assert_eq!(cache.covered(), hi);
            // Warm re-probe: same Arc, no recompute.
            let again = cache.extend_and_generate(&set);
            assert!(Arc::ptr_eq(&cached, &again), "warm path must share");
        }
        assert!(cache.byte_size() > std::mem::size_of::<BandBuckets>());
    }

    #[test]
    fn bucket_cache_shape_guard_and_empty_corpus() {
        let cache = BandBuckets::new(8, 8);
        assert!(cache.matches_shape(8, 8));
        assert!(!cache.matches_shape(8, 4));
        assert!(!cache.matches_shape(16, 8));
        // Zero-band cache on an empty set stays empty and panic-free.
        let sk = Sketcher::new(LshFamily::MinHash, 64, 3).sketch_all(&[]);
        let mut zero = BandBuckets::new(0, 8);
        assert!(zero.extend_and_generate(&sk).is_empty());
    }

    #[test]
    fn banded_delta_is_the_j_filtered_full_join() {
        // The cold delta path must equal the full sequential join filtered
        // down to pairs touching `[from, n)` — at every split point,
        // including from=0 (whole join) and from=n (empty delta).
        let records: Vec<SparseVector> = (0..40u32)
            .map(|i| {
                let mut items: Vec<u32> = (i / 4 * 50..i / 4 * 50 + 40).collect();
                items.push(9000 + i % 5);
                SparseVector::from_set(items)
            })
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 13).sketch_all(&records);
        let full = banded_sequential(&sk, 8, 8);
        assert!(!full.is_empty());
        for from in [0usize, 1, 17, 39, 40] {
            let expect: Vec<(u32, u32)> = full
                .iter()
                .copied()
                .filter(|&(_, j)| j as usize >= from)
                .collect();
            assert_eq!(banded_delta(&sk, 8, 8, from), expect, "from={from}");
        }
        assert!(banded_delta(&sk, 0, 8, 0).is_empty());
    }

    #[test]
    fn bucket_cache_delta_matches_cold_delta_at_every_epoch() {
        // Every extension's fresh slice must equal the cold banded_delta
        // over the same range, and delta_covering must refuse ranges the
        // last extension did not produce.
        let records: Vec<SparseVector> = (0..45u32)
            .map(|i| {
                let mut items: Vec<u32> = (i / 3 * 40..i / 3 * 40 + 45).collect();
                items.push(3000 + i % 7);
                SparseVector::from_set(items)
            })
            .collect();
        let sketcher = Sketcher::new(LshFamily::MinHash, 64, 7);
        let mut set = sketcher.sketch_all(&records[..10]);
        let mut cache = BandBuckets::new(8, 8);
        for (lo, hi) in [(0usize, 10usize), (10, 11), (11, 30), (30, 45)] {
            if lo > 0 {
                sketcher.extend_batch(&records[lo..hi], &mut set);
            }
            cache.extend_and_generate(&set);
            let delta = cache
                .delta_covering(lo, hi)
                .expect("extension must record its delta range");
            assert_eq!(*delta, banded_delta(&set, 8, 8, lo), "range {lo}..{hi}");
            assert!(cache.delta_covering(lo, hi + 1).is_none());
            // A warm re-probe leaves the recorded delta untouched.
            cache.extend_and_generate(&set);
            assert!(cache.delta_covering(lo, hi).is_some());
        }
    }

    #[test]
    fn partial_eviction_keeps_warm_bands_and_exact_outputs() {
        // Grow in installments, partially evict between epochs, and the
        // cache must keep matching the cold reference exactly — eviction
        // only clears the coldest bands' maps, never the pair sets.
        let records: Vec<SparseVector> = (0..60u32)
            .map(|i| {
                let mut items: Vec<u32> = (i / 4 * 40..i / 4 * 40 + 45).collect();
                items.push(7000 + i % 6);
                SparseVector::from_set(items)
            })
            .collect();
        let sketcher = Sketcher::new(LshFamily::MinHash, 64, 5);
        let mut set = sketcher.sketch_all(&records[..20]);
        let mut cache = BandBuckets::new(8, 8);
        cache.extend_and_generate(&set);
        assert_eq!(cache.resident_bands(), 8);
        let warm_bytes = cache.byte_size();

        // Evict down to ~60% of the warm footprint: some bands must
        // survive, some must be cleared, and the byte estimate honors
        // the target (maps are droppable; pairs are not).
        let target = warm_bytes * 3 / 5;
        let evicted = cache.evict_coldest_bands(target);
        assert!(evicted > 0, "a 40% cut must clear at least one band");
        assert!(evicted < 8, "a 40% cut must not clear every band");
        assert!(cache.byte_size() <= target);
        assert_eq!(cache.resident_bands(), 8 - evicted);
        // Eviction is deterministic: same heat history, same victims.
        assert_eq!(cache.evict_coldest_bands(target), 0, "already under");

        // Warm re-probe at the same epoch is untouched by eviction.
        assert_eq!(
            *cache.extend_and_generate(&set),
            banded_sequential(&set, 8, 8)
        );

        // Growth after eviction silently rebuilds the cleared bands:
        // full set, delta slice, and watermarks all exact.
        for (lo, hi) in [(20usize, 21usize), (21, 40), (40, 60)] {
            sketcher.extend_batch(&records[lo..hi], &mut set);
            let pairs = cache.extend_and_generate(&set);
            assert_eq!(*pairs, banded_sequential(&set, 8, 8), "epoch {hi}");
            let delta = cache.delta_covering(lo, hi).expect("delta recorded");
            assert_eq!(*delta, banded_delta(&set, 8, 8, lo), "delta {lo}..{hi}");
            assert_eq!(cache.resident_bands(), 8, "growth re-warms all bands");
        }

        // The final rung's trigger condition: a target below the pair
        // sets' floor is unreachable — every band clears, bytes stay
        // above target, and the caller drops the whole cache.
        let evicted = cache.evict_coldest_bands(0);
        assert_eq!(evicted, 8);
        assert!(cache.byte_size() > 0);
        assert_eq!(cache.resident_bands(), 0);
        // Even with every map gone the canonical pair set still serves.
        assert_eq!(
            *cache.extend_and_generate(&set),
            banded_sequential(&set, 8, 8)
        );
    }

    #[test]
    fn merge_sorted_unique_merges_and_dedups() {
        let a = vec![(0u32, 1u32), (0, 3), (2, 5)];
        let b = vec![(0, 1), (1, 2), (9, 11)];
        assert_eq!(
            merge_sorted_unique(&a, &b),
            vec![(0, 1), (0, 3), (1, 2), (2, 5), (9, 11)]
        );
        assert_eq!(merge_sorted_unique(&a, &[]), a);
        assert_eq!(merge_sorted_unique(&[], &b), b);
    }

    #[test]
    fn adaptive_policy_derives_budget_from_measured_pairs() {
        use plasma_data::rng::seeded;
        use plasma_data::zipf::Zipf;
        use rand::Rng as _;

        // A Zipf-clustered corpus: the hot cluster dominates, so the
        // measured total pair count is the load the budget must balance.
        let zipf = Zipf::new(20, 1.5);
        let mut rng = seeded(42);
        let records: Vec<SparseVector> = (0..300)
            .map(|_| {
                let c = zipf.sample(&mut rng) as u32;
                let mut items: Vec<u32> = (c * 60..c * 60 + 45).collect();
                items.push(5000 + rng.gen_range(0..4u32));
                SparseVector::from_set(items)
            })
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 11).sketch_all(&records);

        // total_pairs is policy-independent; measure it once.
        let measured = banded_shard_stats(&sk, 8, 8, ShardPolicy::never_split());
        assert!(measured.total_pairs > 0);

        // The resolved budget is pinned to the documented formula.
        let policy = ShardPolicy::adaptive();
        assert!(policy.is_adaptive());
        for workers in [1usize, 4, 64] {
            let resolved = policy.resolved_for(measured.total_pairs, workers);
            assert!(!resolved.is_adaptive());
            assert_eq!(resolved.bucket_split_members, 2);
            let expect = (measured.total_pairs / (workers as u64 * TARGET_SHARDS_PER_WORKER))
                .clamp(MIN_ADAPTIVE_PAIRS, MAX_ADAPTIVE_PAIRS);
            assert_eq!(
                resolved.max_pairs_per_shard as u64, expect,
                "workers={workers}"
            );
            // Resolving twice is a fixed point.
            assert_eq!(
                resolved.resolved_for(measured.total_pairs, workers),
                resolved
            );
        }

        // Stats under the adaptive policy respect the budget resolved at
        // the same (process-default) worker count…
        let resolved = policy.resolved_for(measured.total_pairs, resolve_parallelism(None));
        let stats = banded_shard_stats(&sk, 8, 8, policy);
        assert_eq!(stats.total_pairs, measured.total_pairs);
        assert!(
            stats.largest_shard_pairs <= resolved.max_pairs_per_shard as u64,
            "{stats:?} exceeds adaptive budget {resolved:?}"
        );

        // …and the adaptive join's output is bit-identical to the
        // sequential reference at every thread count.
        let reference = banded_sequential(&sk, 8, 8);
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                banded_with_policy(&sk, 8, 8, Some(threads), policy),
                reference,
                "adaptive policy diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn shard_stats_see_the_hot_bucket() {
        // 40 identical records + 10 distinct: every band has one 40-member
        // bucket, and the default policy keeps its slices under budget.
        let mut records: Vec<SparseVector> = (0..40)
            .map(|_| SparseVector::from_set((0..50).collect()))
            .collect();
        records.extend(
            (0..10u32)
                .map(|i| SparseVector::from_set((1000 + i * 100..1000 + i * 100 + 30).collect())),
        );
        let sk = Sketcher::new(LshFamily::MinHash, 64, 9).sketch_all(&records);
        let policy = ShardPolicy::new(2, 100);
        let stats = banded_shard_stats(&sk, 8, 8, policy);
        assert_eq!(stats.hot_bucket_members, 40);
        assert_eq!(stats.hot_bucket_pairs, bucket_pair_count(40));
        assert!(stats.total_pairs >= 8 * stats.hot_bucket_pairs);
        assert!(stats.largest_shard_pairs <= 100);
        assert!(
            stats.shards >= 8 * (stats.hot_bucket_pairs / 100),
            "hot bucket must fan out: {stats:?}"
        );
    }
}
