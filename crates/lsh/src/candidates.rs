//! Candidate-pair generation for all-pairs similarity search.
//!
//! BayesLSH filters candidates; something must generate them. Two
//! strategies are provided:
//!
//! * **Exhaustive** — every unordered pair. Exact recall; quadratic. Used
//!   for small data and ground-truth comparisons.
//! * **Banded LSH** — records sharing any band of `w` consecutive hashes
//!   become candidates (the classic LSH-join). Recall at similarity `s` is
//!   `1 − (1 − p(s)^w)^b` with `b` bands, so band width tunes the
//!   threshold the join targets.
//!
//! # Skew-proof sharding
//!
//! Real high-dimensional corpora are heavy-tailed: one band key routinely
//! collects a large fraction of all records (near-duplicate clusters, a
//! dominant topic, degenerate band keys). A join that parallelizes only
//! *across* bands serializes on that hot bucket — the whole engine waits
//! on one worker enumerating `m·(m−1)/2` pairs. The banded join here
//! therefore shards **within** bands as well, in three phases:
//!
//! 1. **Bucket build** — band keys for all `bands × records` cells are
//!    computed into a flat table by record-sharded workers, then
//!    per-worker partial bucket maps are built over disjoint *key ranges*
//!    of each band (a multiplicative range partition of the `u64` key
//!    space), so no two workers ever own the same bucket.
//! 2. **Pair-range sharding** — every bucket's pair count is known up
//!    front (`m·(m−1)/2`, checked arithmetic). A [`ShardPolicy`] turns
//!    the bucket list into shards of bounded pair count: small buckets
//!    are grouped greedily, and a hot bucket is **split into disjoint
//!    triangular-index ranges** `[lo, hi)` over its pair enumeration —
//!    decoded back to `(row, col)` coordinates with exact integer
//!    arithmetic — so one dominant bucket fans out across every worker.
//! 3. **Dedup** — each shard emits a sorted duplicate-free run; runs are
//!    merged by the k-way heap dedup. The output is the sorted unique
//!    pair set, bit-identical to [`banded_sequential`] for every thread
//!    count and every policy.
//!
//! Cross-band duplicates are removed by the merge; within one band a
//! record holds exactly one key, so a band's pairs are duplicate-free by
//! construction and split shards need no per-shard dedup at all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use plasma_data::hash::FxHashMap;
use rayon::prelude::*;

use crate::resolve_parallelism;
use crate::sketch::SketchSet;

/// Exact capacity for [`exhaustive`], `n·(n−1)/2`, computed with checked
/// arithmetic: when the multiply would overflow `usize` (an allocation no
/// machine can satisfy anyway), the pre-reservation is skipped entirely
/// and `Vec` growth takes over.
fn exhaustive_capacity(n: usize) -> usize {
    n.checked_mul(n.saturating_sub(1)).map_or(0, |p| p / 2)
}

/// Generates all unordered pairs `(i, j)`, `i < j`.
pub fn exhaustive(n: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(exhaustive_capacity(n));
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i as u32, j as u32));
        }
    }
    out
}

/// How banded candidate generation splits bucket pairing across workers.
///
/// The policy bounds the pair count a single shard (one worker's unit of
/// pairing work) may carry. Small buckets are grouped until the budget
/// fills; a bucket that is both **hot** (at least
/// [`bucket_split_members`](Self::bucket_split_members) members) and over
/// budget is split into disjoint triangular pair ranges of at most
/// [`max_pairs_per_shard`](Self::max_pairs_per_shard) pairs each.
///
/// The policy never changes the candidate set — only how its generation
/// is distributed. [`banded_with_policy`] returns bit-identical output
/// for every policy and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Minimum member count for a bucket to be split-eligible. Buckets
    /// below this stay whole (grouped with neighbors), whatever their
    /// pair count. Must be at least 2.
    pub bucket_split_members: usize,
    /// Pair budget per shard. With the default policy every shard carries
    /// at most this many pairs; a custom policy whose
    /// `bucket_split_members` threshold exceeds the budget can leave an
    /// over-budget bucket whole in its own shard. Must be at least 1.
    pub max_pairs_per_shard: usize,
}

impl Default for ShardPolicy {
    /// `bucket_split_members = 256`, `max_pairs_per_shard = 32 768`. A
    /// 256-member bucket holds 32 640 pairs, so with the defaults every
    /// shard is bounded by the pair budget.
    fn default() -> Self {
        Self {
            bucket_split_members: 256,
            max_pairs_per_shard: 32_768,
        }
    }
}

impl ShardPolicy {
    /// A policy with explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics when `bucket_split_members < 2` (a 1-member bucket has no
    /// pairs to split) or `max_pairs_per_shard == 0`.
    pub fn new(bucket_split_members: usize, max_pairs_per_shard: usize) -> Self {
        assert!(
            bucket_split_members >= 2,
            "buckets need at least 2 members to pair"
        );
        assert!(max_pairs_per_shard >= 1, "shards must hold at least 1 pair");
        Self {
            bucket_split_members,
            max_pairs_per_shard,
        }
    }

    /// The sharding-off policy: every bucket stays whole and all buckets
    /// land in one shard — the parallel path degenerates to one worker
    /// pairing everything (bucket build still shards). Useful as the
    /// differential baseline and for measuring what sharding buys.
    pub fn never_split() -> Self {
        Self {
            bucket_split_members: usize::MAX,
            max_pairs_per_shard: usize::MAX,
        }
    }
}

/// Banded LSH candidate generation over a sketch set, using all cores and
/// the default [`ShardPolicy`].
///
/// `bands` bands of `band_width` hashes each are read from the front of the
/// sketches; records sharing a band key in the same bucket are paired.
/// Duplicate pairs across bands are deduplicated. Output is sorted,
/// unique, and independent of the thread count.
pub fn banded(sketches: &SketchSet, bands: usize, band_width: usize) -> Vec<(u32, u32)> {
    banded_with(sketches, bands, band_width, None)
}

/// [`banded`] with an explicit thread count (`None` = all cores,
/// `Some(1)` = sequential) and the default [`ShardPolicy`].
pub fn banded_with(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    parallelism: Option<usize>,
) -> Vec<(u32, u32)> {
    banded_with_policy(
        sketches,
        bands,
        band_width,
        parallelism,
        ShardPolicy::default(),
    )
}

/// [`banded`] with an explicit thread count and shard policy. The output
/// is the sorted unique candidate set, bit-identical to
/// [`banded_sequential`] at every `(parallelism, policy)` combination —
/// pinned by `crates/lsh/tests/banded_differential.rs`.
pub fn banded_with_policy(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    parallelism: Option<usize>,
    policy: ShardPolicy,
) -> Vec<(u32, u32)> {
    let threads = resolve_parallelism(parallelism);
    if threads <= 1 || sketches.len() < 2 || bands == 0 {
        return banded_sequential(sketches, bands, band_width);
    }
    banded_sharded(sketches, bands, band_width, threads, policy)
}

/// The sequential reference: one pass per band into a reused bucket map
/// (capacity-hinted to the record count; member vectors are recycled
/// through a pool instead of reallocated per band), pairs accumulated
/// into one buffer, then a single global sort + dedup. This is the
/// canonical output every sharded configuration must reproduce exactly.
pub fn banded_sequential(sketches: &SketchSet, bands: usize, band_width: usize) -> Vec<(u32, u32)> {
    let n = sketches.len();
    let mut out: Vec<(u32, u32)> = Vec::new();
    if n < 2 || bands == 0 {
        return out;
    }
    let mut keys = vec![0u64; n];
    // Capacity hint: at most n distinct keys per band; the map (and the
    // recycled member vectors) are reused across every band.
    let mut buckets: FxHashMap<u64, Vec<u32>> =
        FxHashMap::with_capacity_and_hasher(n, Default::default());
    let mut pool: Vec<Vec<u32>> = Vec::new();
    for band in 0..bands {
        sketches.band_keys_into(band, band_width, 0, &mut keys);
        for (i, &key) in keys.iter().enumerate() {
            buckets
                .entry(key)
                .or_insert_with(|| pool.pop().unwrap_or_default())
                .push(i as u32);
        }
        for (_, mut members) in buckets.drain() {
            if members.len() >= 2 {
                emit_bucket(&members, &mut out);
            }
            members.clear();
            pool.push(members);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Shape of one band's bucket-and-shard structure under a policy, for
/// bench/telemetry introspection (`repro bench` publishes these as the
/// `banded_skew` fields). Computed from a sequential bucket build, so the
/// numbers are deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct BandedShardStats {
    /// Records in the sketch set.
    pub records: u64,
    /// Buckets with at least 2 members, across all bands.
    pub buckets: u64,
    /// Members of the largest single bucket.
    pub hot_bucket_members: u64,
    /// Pairs inside that largest bucket.
    pub hot_bucket_pairs: u64,
    /// Total pairs across all buckets (pre-dedup generation work).
    pub total_pairs: u64,
    /// Shards the policy produces.
    pub shards: u64,
    /// Pairs carried by the largest shard — the longest serial pairing
    /// any single worker can be handed. Sharding is doing its job when
    /// this stays near `max_pairs_per_shard` while `hot_bucket_pairs`
    /// dwarfs it.
    pub largest_shard_pairs: u64,
}

/// Computes [`BandedShardStats`] for a join configuration without
/// generating any pairs.
pub fn banded_shard_stats(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    policy: ShardPolicy,
) -> BandedShardStats {
    let n = sketches.len();
    let mut stats = BandedShardStats {
        records: n as u64,
        ..Default::default()
    };
    if n < 2 || bands == 0 {
        return stats;
    }
    let mut keys = vec![0u64; n];
    let mut counts: FxHashMap<u64, usize> =
        FxHashMap::with_capacity_and_hasher(n, Default::default());
    let mut sizes: Vec<usize> = Vec::new();
    for band in 0..bands {
        sketches.band_keys_into(band, band_width, 0, &mut keys);
        for &key in keys.iter() {
            *counts.entry(key).or_insert(0) += 1;
        }
        sizes.extend(counts.drain().map(|(_, c)| c).filter(|&c| c >= 2));
    }
    stats.buckets = sizes.len() as u64;
    for &m in &sizes {
        let pairs = bucket_pair_count(m);
        stats.total_pairs += pairs;
        if m as u64 > stats.hot_bucket_members {
            stats.hot_bucket_members = m as u64;
            stats.hot_bucket_pairs = pairs;
        }
    }
    let shards = plan_shards(&sizes, policy);
    stats.shards = shards.len() as u64;
    stats.largest_shard_pairs = shards
        .iter()
        .map(|s| match *s {
            Shard::Whole { first, count } => sizes[first..first + count]
                .iter()
                .map(|&m| bucket_pair_count(m))
                .sum(),
            Shard::Slice { lo, hi, .. } => hi - lo,
        })
        .max()
        .unwrap_or(0);
    stats
}

/// One unit of pairing work in the sharded join.
#[derive(Debug, Clone, Copy)]
enum Shard {
    /// A run of consecutive whole buckets, grouped under the pair budget.
    Whole {
        /// Index of the first bucket in the group.
        first: usize,
        /// Number of consecutive buckets grouped.
        count: usize,
    },
    /// A triangular pair-index range `[lo, hi)` of one hot bucket.
    Slice {
        /// Index of the split bucket.
        bucket: usize,
        /// First pair index (inclusive).
        lo: u64,
        /// Last pair index (exclusive).
        hi: u64,
    },
}

/// `m·(m−1)/2` in `u128` intermediate arithmetic, so even a
/// `u32::MAX`-member bucket (the largest addressable with `u32` record
/// ids) cannot overflow en route to the `u64` result.
fn bucket_pair_count(members: usize) -> u64 {
    let m = members as u128;
    u64::try_from(m * m.saturating_sub(1) / 2).expect("bucket pair count overflows u64")
}

/// Pairs in triangular rows `< a` of an `m`-member bucket:
/// `a·(2m − a − 1)/2`, exact in `u128`.
fn tri_prefix(m: u64, a: u64) -> u64 {
    debug_assert!(a < m);
    let (m, a) = (m as u128, a as u128);
    (a * (2 * m - a - 1) / 2) as u64
}

/// Decodes linear pair index `t` of an `m`-member bucket's row-major
/// triangular enumeration back to `(row, col)`, `row < col < m`. Integer
/// binary search — no floating point, exact for every representable `t`.
fn tri_decode(m: u64, t: u64) -> (u64, u64) {
    debug_assert!(m >= 2 && t < bucket_pair_count(m as usize));
    let (mut lo, mut hi) = (0u64, m - 2);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if tri_prefix(m, mid) <= t {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (lo, lo + 1 + (t - tri_prefix(m, lo)))
}

/// Emits every pair of one bucket. Members arrive in ascending record
/// order, so the run appended is sorted and `i < j` holds by construction.
fn emit_bucket(members: &[u32], out: &mut Vec<(u32, u32)>) {
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
    out.reserve(bucket_pair_count(members.len()) as usize);
    for a in 0..members.len() {
        for b in (a + 1)..members.len() {
            out.push((members[a], members[b]));
        }
    }
}

/// Emits the triangular pair range `[lo, hi)` of one bucket: decode the
/// start coordinate once, then walk the enumeration. Sorted and
/// duplicate-free by construction.
fn emit_slice(members: &[u32], lo: u64, hi: u64, out: &mut Vec<(u32, u32)>) {
    if hi <= lo {
        return;
    }
    let m = members.len() as u64;
    out.reserve((hi - lo) as usize);
    let (mut a, mut b) = tri_decode(m, lo);
    for _ in lo..hi {
        out.push((members[a as usize], members[b as usize]));
        b += 1;
        if b == m {
            a += 1;
            b = a + 1;
        }
    }
}

/// The multiplicative range partition of the `u64` key space into
/// `partitions` contiguous ranges: workers own disjoint key ranges, so
/// partial bucket maps merge by concatenation.
fn key_partition(key: u64, partitions: usize) -> usize {
    ((key as u128 * partitions as u128) >> 64) as usize
}

/// Turns the bucket size list into shards under `policy`: consecutive
/// small buckets group greedily up to the pair budget; hot buckets split
/// into triangular ranges. Every bucket's pairs land in exactly one
/// shard's ranges, so shard runs partition the (band-local) pair set.
fn plan_shards(sizes: &[usize], policy: ShardPolicy) -> Vec<Shard> {
    let max_pairs = policy.max_pairs_per_shard.max(1) as u64;
    let mut shards = Vec::new();
    let (mut group_first, mut group_count, mut group_pairs) = (0usize, 0usize, 0u64);
    for (b, &m) in sizes.iter().enumerate() {
        let pairs = bucket_pair_count(m);
        if m >= policy.bucket_split_members && pairs > max_pairs {
            if group_count > 0 {
                shards.push(Shard::Whole {
                    first: group_first,
                    count: group_count,
                });
                group_count = 0;
                group_pairs = 0;
            }
            let mut lo = 0u64;
            while lo < pairs {
                let hi = (lo.saturating_add(max_pairs)).min(pairs);
                shards.push(Shard::Slice { bucket: b, lo, hi });
                lo = hi;
            }
        } else {
            if group_count > 0 && group_pairs.saturating_add(pairs) > max_pairs {
                shards.push(Shard::Whole {
                    first: group_first,
                    count: group_count,
                });
                group_count = 0;
                group_pairs = 0;
            }
            if group_count == 0 {
                group_first = b;
            }
            group_count += 1;
            group_pairs = group_pairs.saturating_add(pairs);
        }
    }
    if group_count > 0 {
        shards.push(Shard::Whole {
            first: group_first,
            count: group_count,
        });
    }
    shards
}

/// The sharded parallel join (phases 1–3 of the module docs). `threads`
/// is already resolved and `> 1`.
fn banded_sharded(
    sketches: &SketchSet,
    bands: usize,
    band_width: usize,
    threads: usize,
    policy: ShardPolicy,
) -> Vec<(u32, u32)> {
    let n = sketches.len();

    // Phase 1a: the flat band-key table, record-sharded across workers
    // into disjoint slices.
    let total = bands
        .checked_mul(n)
        .expect("band-key table size overflows usize");
    let mut keys = vec![0u64; total];
    let key_chunk = total.div_ceil(threads);
    keys.par_chunks_mut(key_chunk)
        .enumerate_for_each(|chunk_idx, slice| {
            let mut idx = chunk_idx * key_chunk;
            let mut off = 0;
            while off < slice.len() {
                let (band, first) = (idx / n, idx % n);
                let take = (n - first).min(slice.len() - off);
                sketches.band_keys_into(band, band_width, first, &mut slice[off..off + take]);
                idx += take;
                off += take;
            }
        });

    // Phase 1b: per-worker partial bucket maps over disjoint
    // (band, key-range) cells. When bands alone undersupply the workers,
    // each band's key space is range-partitioned so the bucket build
    // itself spreads out. The map (and its allocation) is reused across
    // one worker's cells; member vectors move out through `drain`.
    let partitions = threads.div_ceil(bands.min(threads));
    let cells: Vec<(usize, usize)> = (0..bands)
        .flat_map(|band| (0..partitions).map(move |p| (band, p)))
        .collect();
    let cell_chunk = cells.len().div_ceil(threads);
    let nested_buckets: Vec<Vec<Vec<u32>>> = cells
        .par_chunks(cell_chunk)
        .map(|chunk| {
            let mut local: Vec<Vec<u32>> = Vec::new();
            let mut map: FxHashMap<u64, Vec<u32>> =
                FxHashMap::with_capacity_and_hasher(n / partitions + 1, Default::default());
            for &(band, p) in chunk {
                let band_keys = &keys[band * n..(band + 1) * n];
                if partitions == 1 {
                    for (i, &key) in band_keys.iter().enumerate() {
                        map.entry(key).or_default().push(i as u32);
                    }
                } else {
                    for (i, &key) in band_keys.iter().enumerate() {
                        if key_partition(key, partitions) == p {
                            map.entry(key).or_default().push(i as u32);
                        }
                    }
                }
                local.extend(map.drain().map(|(_, m)| m).filter(|m| m.len() >= 2));
            }
            local
        })
        .collect();
    let buckets: Vec<Vec<u32>> = nested_buckets.into_iter().flatten().collect();
    // The key table is dead once buckets exist; release it before the
    // memory-hungry emission phase (bands × records × 8 bytes).
    drop(keys);
    if buckets.is_empty() {
        return Vec::new();
    }

    // Phase 2: shard plan from the bucket sizes.
    let sizes: Vec<usize> = buckets.iter().map(Vec::len).collect();
    let shards = plan_shards(&sizes, policy);

    // Phase 3: emit one sorted run per shard (worker-local staging buffer
    // reused across a worker's shards; emitted runs are exact-sized), then
    // k-way merge-dedup into the canonical sorted unique pair set.
    let shard_chunk = shards.len().div_ceil(threads);
    let nested_runs: Vec<Vec<Vec<(u32, u32)>>> = shards
        .par_chunks(shard_chunk)
        .map(|chunk| {
            let mut scratch: Vec<(u32, u32)> = Vec::new();
            let mut runs: Vec<Vec<(u32, u32)>> = Vec::with_capacity(chunk.len());
            for shard in chunk {
                scratch.clear();
                match *shard {
                    Shard::Whole { first, count } => {
                        for members in &buckets[first..first + count] {
                            emit_bucket(members, &mut scratch);
                        }
                        // Grouped buckets may interleave records and (across
                        // a band boundary) repeat a pair; canonicalize the
                        // run here so the merge sees sorted unique input.
                        scratch.sort_unstable();
                        scratch.dedup();
                    }
                    Shard::Slice { bucket, lo, hi } => {
                        emit_slice(&buckets[bucket], lo, hi, &mut scratch);
                    }
                }
                runs.push(scratch.as_slice().to_vec());
            }
            runs
        })
        .collect();
    kway_merge_dedup(nested_runs.into_iter().flatten().collect())
}

/// Merges sorted runs into one sorted, duplicate-free vector.
fn kway_merge_dedup(runs: Vec<Vec<(u32, u32)>>) -> Vec<(u32, u32)> {
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.into_iter().next().expect("one run"),
        _ => {}
    }
    let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> = BinaryHeap::new();
    let mut cursors = vec![0usize; runs.len()];
    for (r, run) in runs.iter().enumerate() {
        if let Some(&first) = run.first() {
            heap.push(Reverse((first, r)));
        }
    }
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(runs.iter().map(Vec::len).max().unwrap_or(0));
    while let Some(Reverse((pair, r))) = heap.pop() {
        if out.last() != Some(&pair) {
            out.push(pair);
        }
        cursors[r] += 1;
        if let Some(&next) = runs[r].get(cursors[r]) {
            heap.push(Reverse((next, r)));
        }
    }
    out
}

/// Expected recall of a banded join at similarity `s`:
/// `1 − (1 − p(s)^w)^b`.
pub fn banded_recall(family: crate::family::LshFamily, s: f64, bands: usize, width: usize) -> f64 {
    let p = family.match_probability(s);
    1.0 - (1.0 - p.powi(width as i32)).powi(bands as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::LshFamily;
    use crate::sketch::Sketcher;
    use plasma_data::vector::SparseVector;

    #[test]
    fn exhaustive_counts() {
        assert_eq!(exhaustive(4).len(), 6);
        assert_eq!(exhaustive(0).len(), 0);
        assert_eq!(exhaustive(1).len(), 0);
    }

    #[test]
    fn exhaustive_capacity_is_exact_and_overflow_safe() {
        // Exact for representable sizes (matches the generated length)…
        for n in [0usize, 1, 2, 4, 100] {
            assert_eq!(exhaustive_capacity(n), exhaustive(n).len());
        }
        // …and degrades to no pre-reservation when n·(n−1) would overflow
        // usize, instead of panicking (debug) or requesting an absurd
        // allocation (release).
        for n in [usize::MAX, u32::MAX as usize + 2, 1 << 33] {
            assert_eq!(exhaustive_capacity(n), 0, "n = {n:#x}");
        }
        // Just below the overflow boundary the formula still computes.
        let n = 1usize << 32;
        assert_eq!(exhaustive_capacity(n), (n / 2) * (n - 1));
    }

    #[test]
    fn bucket_pair_count_is_exact_and_overflow_safe() {
        assert_eq!(bucket_pair_count(0), 0);
        assert_eq!(bucket_pair_count(1), 0);
        assert_eq!(bucket_pair_count(2), 1);
        assert_eq!(bucket_pair_count(1000), 499_500);
        // A u32::MAX-member bucket — the largest addressable with u32
        // record ids — computes without overflow:
        // (2^32 − 1)(2^32 − 2)/2 = 2^63 − 3·2^31 + 1.
        assert_eq!(
            bucket_pair_count(u32::MAX as usize),
            (1u64 << 63) - 3 * (1u64 << 31) + 1
        );
    }

    #[test]
    fn tri_decode_inverts_the_enumeration() {
        for m in [2u64, 3, 4, 7, 100] {
            let mut t = 0u64;
            for a in 0..m {
                for b in (a + 1)..m {
                    assert_eq!(tri_decode(m, t), (a, b), "m={m} t={t}");
                    t += 1;
                }
            }
            assert_eq!(t, bucket_pair_count(m as usize));
        }
    }

    #[test]
    fn emit_slice_ranges_tile_the_bucket() {
        let members: Vec<u32> = vec![3, 8, 11, 20, 21, 33, 40];
        let mut whole = Vec::new();
        emit_bucket(&members, &mut whole);
        let total = bucket_pair_count(members.len());
        for step in [1u64, 2, 5, total] {
            let mut tiled = Vec::new();
            let mut lo = 0;
            while lo < total {
                let hi = (lo + step).min(total);
                emit_slice(&members, lo, hi, &mut tiled);
                lo = hi;
            }
            assert_eq!(tiled, whole, "step {step}");
        }
    }

    #[test]
    fn plan_shards_bounds_every_shard_with_default_policy() {
        let policy = ShardPolicy::default();
        // One hot bucket (1000 members) among small ones.
        let sizes = vec![3usize, 1000, 2, 2, 300, 5];
        let shards = plan_shards(&sizes, policy);
        let hot_pairs = bucket_pair_count(1000);
        let max = policy.max_pairs_per_shard as u64;
        assert!(shards.len() as u64 >= hot_pairs / max);
        let mut covered = 0u64;
        for s in &shards {
            let pairs = match *s {
                Shard::Whole { first, count } => sizes[first..first + count]
                    .iter()
                    .map(|&m| bucket_pair_count(m))
                    .sum(),
                Shard::Slice { lo, hi, .. } => hi - lo,
            };
            assert!(pairs <= max, "{s:?} carries {pairs} pairs");
            covered += pairs;
        }
        let total: u64 = sizes.iter().map(|&m| bucket_pair_count(m)).sum();
        assert_eq!(covered, total, "shards must tile every pair exactly once");
    }

    #[test]
    fn never_split_policy_yields_one_shard() {
        let shards = plan_shards(&[10, 4000, 7], ShardPolicy::never_split());
        assert_eq!(shards.len(), 1);
        match shards[0] {
            Shard::Whole { first: 0, count: 3 } => {}
            other => panic!("expected one whole-group shard, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 members")]
    fn shard_policy_rejects_unpairable_split_threshold() {
        let _ = ShardPolicy::new(1, 64);
    }

    #[test]
    fn banded_finds_near_duplicates() {
        // Three clones and one unrelated record: the clones must pair up.
        let a = SparseVector::from_set((0..50).collect());
        let b = SparseVector::from_set((0..50).collect());
        let c = SparseVector::from_set((0..50).collect());
        let z = SparseVector::from_set((500..550).collect());
        let sk = Sketcher::new(LshFamily::MinHash, 64, 1).sketch_all(&[a, b, c, z]);
        let cands = banded(&sk, 8, 8);
        assert!(cands.contains(&(0, 1)));
        assert!(cands.contains(&(0, 2)));
        assert!(cands.contains(&(1, 2)));
    }

    #[test]
    fn banded_skips_dissimilar_pairs_mostly() {
        // 20 mutually-disjoint sets: expected candidates ≈ 0.
        let records: Vec<SparseVector> = (0..20u32)
            .map(|i| SparseVector::from_set((i * 100..i * 100 + 50).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 2).sketch_all(&records);
        let cands = banded(&sk, 8, 8);
        assert!(
            cands.len() <= 2,
            "disjoint sets should almost never collide, got {}",
            cands.len()
        );
    }

    #[test]
    fn recall_formula_behaves() {
        let f = LshFamily::MinHash;
        let high = banded_recall(f, 0.9, 16, 4);
        let low = banded_recall(f, 0.2, 16, 4);
        assert!(high > 0.99, "high-sim recall {high}");
        assert!(low < 0.2, "low-sim recall {low}");
    }

    #[test]
    fn banded_pairs_are_sorted_unique() {
        let records: Vec<SparseVector> = (0..10u32)
            .map(|i| SparseVector::from_set((0..40 + i).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 3).sketch_all(&records);
        let cands = banded(&sk, 8, 8);
        for w in cands.windows(2) {
            assert!(w[0] < w[1], "output must be sorted and deduplicated");
        }
        for &(i, j) in &cands {
            assert!(i < j);
        }
    }

    #[test]
    fn banded_is_thread_count_invariant() {
        // Near-duplicate clusters generate heavy cross-band duplication;
        // every thread count must produce the same sorted unique list.
        let records: Vec<SparseVector> = (0..30u32)
            .map(|i| SparseVector::from_set((i / 3 * 40..i / 3 * 40 + 45).collect()))
            .collect();
        let sk = Sketcher::new(LshFamily::MinHash, 64, 5).sketch_all(&records);
        let reference = banded_with(&sk, 16, 4, Some(1));
        for threads in [2, 3, 5, 16] {
            assert_eq!(
                banded_with(&sk, 16, 4, Some(threads)),
                reference,
                "banded join diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn kway_merge_dedup_merges_and_dedups() {
        let runs = vec![
            vec![(0, 1), (0, 3), (2, 5)],
            vec![(0, 1), (1, 2), (2, 5)],
            vec![],
            vec![(0, 2)],
        ];
        assert_eq!(
            kway_merge_dedup(runs),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 5)]
        );
    }

    #[test]
    fn empty_and_singleton_datasets_yield_empty_candidates() {
        // The 0-record/1-record allocation guard: capacity hints must not
        // assume a non-empty dataset, on either path or any policy.
        for n in [0usize, 1] {
            let records: Vec<SparseVector> = (0..n as u32)
                .map(|_| SparseVector::from_set(vec![1, 2, 3]))
                .collect();
            let sk = Sketcher::new(LshFamily::MinHash, 64, 3).sketch_all(&records);
            assert!(banded_sequential(&sk, 8, 8).is_empty());
            for policy in [ShardPolicy::default(), ShardPolicy::never_split()] {
                assert!(banded_with_policy(&sk, 8, 8, Some(4), policy).is_empty());
            }
            let stats = banded_shard_stats(&sk, 8, 8, ShardPolicy::default());
            assert_eq!(stats.records, n as u64);
            assert_eq!(stats.shards, 0);
            assert_eq!(stats.total_pairs, 0);
        }
    }

    #[test]
    fn shard_stats_see_the_hot_bucket() {
        // 40 identical records + 10 distinct: every band has one 40-member
        // bucket, and the default policy keeps its slices under budget.
        let mut records: Vec<SparseVector> = (0..40)
            .map(|_| SparseVector::from_set((0..50).collect()))
            .collect();
        records.extend(
            (0..10u32)
                .map(|i| SparseVector::from_set((1000 + i * 100..1000 + i * 100 + 30).collect())),
        );
        let sk = Sketcher::new(LshFamily::MinHash, 64, 9).sketch_all(&records);
        let policy = ShardPolicy::new(2, 100);
        let stats = banded_shard_stats(&sk, 8, 8, policy);
        assert_eq!(stats.hot_bucket_members, 40);
        assert_eq!(stats.hot_bucket_pairs, bucket_pair_count(40));
        assert!(stats.total_pairs >= 8 * stats.hot_bucket_pairs);
        assert!(stats.largest_shard_pairs <= 100);
        assert!(
            stats.shards >= 8 * (stats.hot_bucket_pairs / 100),
            "hot bucket must fan out: {stats:?}"
        );
    }
}
