//! LSH families and their collision-probability curves.

use plasma_data::similarity::Similarity;

/// An LSH family, tied to the similarity measure it estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LshFamily {
    /// Min-wise independent permutations; one 64-bit min-hash per
    /// permutation. `Pr[h(a) = h(b)] = jaccard(a, b)`.
    MinHash,
    /// Random-hyperplane sign bits. `Pr[bit(a) = bit(b)] = 1 − θ/π` where
    /// `θ = arccos(cosine(a, b))`.
    SimHash,
}

impl LshFamily {
    /// The family matching a similarity measure.
    pub fn for_measure(measure: Similarity) -> Self {
        match measure {
            Similarity::Jaccard => LshFamily::MinHash,
            Similarity::Cosine => LshFamily::SimHash,
        }
    }

    /// The similarity measure this family estimates.
    pub fn measure(self) -> Similarity {
        match self {
            LshFamily::MinHash => Similarity::Jaccard,
            LshFamily::SimHash => Similarity::Cosine,
        }
    }

    /// Probability a single hash matches, as a function of similarity `s`.
    ///
    /// For SimHash, `s` is cosine similarity in `[−1, 1]`; for MinHash,
    /// Jaccard in `[0, 1]`.
    pub fn match_probability(self, s: f64) -> f64 {
        match self {
            LshFamily::MinHash => s.clamp(0.0, 1.0),
            LshFamily::SimHash => 1.0 - s.clamp(-1.0, 1.0).acos() / std::f64::consts::PI,
        }
    }

    /// Inverse of [`match_probability`](Self::match_probability): the
    /// similarity whose expected match rate is `p`.
    pub fn similarity_from_match_rate(self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            LshFamily::MinHash => p,
            LshFamily::SimHash => ((1.0 - p) * std::f64::consts::PI).cos(),
        }
    }

    /// Lower bound of the similarity domain (−1 for cosine, 0 for Jaccard).
    pub fn domain_min(self) -> f64 {
        match self {
            LshFamily::MinHash => 0.0,
            LshFamily::SimHash => -1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minhash_probability_is_identity() {
        assert_eq!(LshFamily::MinHash.match_probability(0.3), 0.3);
        assert_eq!(LshFamily::MinHash.match_probability(1.2), 1.0);
    }

    #[test]
    fn simhash_probability_endpoints() {
        let f = LshFamily::SimHash;
        assert!((f.match_probability(1.0) - 1.0).abs() < 1e-12);
        assert!((f.match_probability(-1.0) - 0.0).abs() < 1e-12);
        assert!((f.match_probability(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_roundtrips() {
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            for s in [-0.5, 0.0, 0.2, 0.5, 0.9, 0.99] {
                if fam == LshFamily::MinHash && s < 0.0 {
                    continue;
                }
                let p = fam.match_probability(s);
                let back = fam.similarity_from_match_rate(p);
                assert!((back - s).abs() < 1e-9, "{fam:?}: {s} → {p} → {back}");
            }
        }
    }

    #[test]
    fn family_measure_mapping() {
        assert_eq!(
            LshFamily::for_measure(Similarity::Cosine),
            LshFamily::SimHash
        );
        assert_eq!(LshFamily::MinHash.measure(), Similarity::Jaccard);
    }

    #[test]
    fn match_probability_is_monotone() {
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let lo = fam.domain_min();
            let mut prev = -1.0;
            let mut s = lo;
            while s <= 1.0 {
                let p = fam.match_probability(s);
                assert!(p >= prev);
                prev = p;
                s += 0.05;
            }
        }
    }
}
