//! Locality-sensitive hashing and BayesLSH inference for PLASMA-HD.
//!
//! PLASMA-HD stores each record's LSH hashes as a single concatenated sketch
//! (§2.4: "maintains the LSH hashes as a single concatenated sketch" so all
//! candidate pairs can be compared cache-friendlily), then reasons about
//! pair similarity with BayesLSH: a Bayesian posterior over the true
//! similarity given `m` matching hashes out of `n` compared, with early
//! *pruning* (Eq. 2.1) and *concentration* (Eq. 2.2) stopping rules.
//!
//! Two hash families cover the paper's measures:
//! * min-wise hashing for Jaccard — `Pr[match] = s`
//! * random-hyperplane (sign) hashing for cosine — `Pr[match] = 1 − θ/π`
//!
//! # Engine architecture
//!
//! The crate implements the *sketch* half of the APSS hot path (Fig. 2.9
//! splits a probe into sketching and processing; `plasma-core` owns the
//! processing half):
//!
//! * [`sketch`] — dim-outer, lane-inner kernels stream each record's
//!   dimensions once while updating every hash lane, and whole-dataset
//!   passes shard records across threads into disjoint slices of the flat
//!   sketch buffer. Output is bit-identical at every thread count.
//! * [`candidates`] — exhaustive and banded-LSH candidate generation; the
//!   banded join shards end to end (parallel bucket build over key-range
//!   partitions, hot buckets split into triangular pair ranges under a
//!   [`candidates::ShardPolicy`]) and merges per-shard sorted runs with a
//!   k-way dedup, avoiding a global hash-set of pairs. Skewed key
//!   distributions therefore cannot serialize candidate generation.
//! * [`bayes`] — posterior inference and the memoized per-`(m, n)`
//!   decision table ([`bayes::ProbeTable`]); tables are cheap to build, so
//!   parallel callers give each worker its own.
//!
//! Thread counts everywhere follow one convention, resolved by
//! [`resolve_parallelism`]: `None` means "all cores", `Some(k)` pins `k`
//! threads, and `Some(1)` forces the sequential path. Results never depend
//! on the choice. The `None` default can be overridden process-wide with
//! the `PLASMA_PARALLELISM` environment variable (read once) — this is
//! how CI runs the whole tier-1 suite at pinned worker counts without
//! touching any call site.

pub mod bayes;
pub mod candidates;
pub mod family;
pub mod sketch;

pub use bayes::{BayesLsh, BayesParams, PairDecision};
pub use candidates::ShardPolicy;
pub use family::LshFamily;
pub use sketch::{SketchSet, Sketcher};

/// The process-wide default worker count for `parallelism: None`: the
/// `PLASMA_PARALLELISM` environment variable when set to a positive
/// integer (cached on first use), otherwise all available cores.
fn default_parallelism() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("PLASMA_PARALLELISM")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|k| k.max(1))
            .unwrap_or_else(rayon::current_num_threads)
    })
}

/// Resolves the workspace-wide parallelism knob: `None` = the process
/// default (all available cores, unless pinned by `PLASMA_PARALLELISM` —
/// the env-driven matrix CI uses to run every test at fixed worker
/// counts), `Some(k)` = exactly `max(k, 1)` threads.
pub fn resolve_parallelism(parallelism: Option<usize>) -> usize {
    match parallelism {
        Some(k) => k.max(1),
        None => default_parallelism(),
    }
}

/// Records per sealed segment of the segmented sketch store when nothing
/// overrides it: large enough that segment bookkeeping is noise, small
/// enough that a streaming ingest's snapshot clone (tail + segment
/// pointers) stays far below the corpus size.
const DEFAULT_SEGMENT_RECORDS: usize = 512;

/// The process-wide default records-per-segment for
/// [`sketch::SketchSet`]'s segmented store: the `PLASMA_SEGMENT_RECORDS`
/// environment variable when set to a positive integer (cached on first
/// use), otherwise [`DEFAULT_SEGMENT_RECORDS`]. This is how CI runs the
/// whole tier-1 suite over many-segment layouts without touching any
/// call site, mirroring `PLASMA_PARALLELISM`.
fn default_segment_records() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("PLASMA_SEGMENT_RECORDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|k| k.max(1))
            .unwrap_or(DEFAULT_SEGMENT_RECORDS)
    })
}

/// Resolves the records-per-segment knob of the segmented sketch store,
/// rounded up to a power of two so record→segment indexing is a shift and
/// a mask: `None` = the process default (512, unless pinned by
/// `PLASMA_SEGMENT_RECORDS`), `Some(k)` = `max(k, 1)` rounded up. Segment
/// geometry never changes sketch bytes or probe outputs — only how the
/// storage is chunked.
pub fn resolve_segment_records(segment_records: Option<usize>) -> usize {
    match segment_records {
        Some(k) => k.max(1),
        None => default_segment_records(),
    }
    .next_power_of_two()
}
