//! Locality-sensitive hashing and BayesLSH inference for PLASMA-HD.
//!
//! PLASMA-HD stores each record's LSH hashes as a single concatenated sketch
//! (§2.4: "maintains the LSH hashes as a single concatenated sketch" so all
//! candidate pairs can be compared cache-friendlily), then reasons about
//! pair similarity with BayesLSH: a Bayesian posterior over the true
//! similarity given `m` matching hashes out of `n` compared, with early
//! *pruning* (Eq. 2.1) and *concentration* (Eq. 2.2) stopping rules.
//!
//! Two hash families cover the paper's measures:
//! * min-wise hashing for Jaccard — `Pr[match] = s`
//! * random-hyperplane (sign) hashing for cosine — `Pr[match] = 1 − θ/π`

pub mod bayes;
pub mod candidates;
pub mod family;
pub mod sketch;

pub use bayes::{BayesLsh, BayesParams, PairDecision};
pub use family::LshFamily;
pub use sketch::{SketchSet, Sketcher};
