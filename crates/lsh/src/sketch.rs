//! Sketch generation and storage.
//!
//! Every record gets a fixed-length sketch: `n` 64-bit min-hashes
//! (MinHash family) or `n` sign bits packed into words (SimHash family).
//! Sketches for a whole dataset live in a **segmented store**: a list of
//! sealed, exactly-full, `Arc`-shared segments plus one mutable tail
//! segment, each holding a power-of-two run of records in flat
//! record-major order. Every record's words stay contiguous inside its
//! segment, so pair evaluation still streams contiguous memory — the
//! concatenated-sketch layout §2.4 credits for BayesLSH's cache
//! friendliness — while a snapshot clone copies only the tail and one
//! pointer per sealed segment (O(segments + tail), not O(corpus)).
//!
//! # Segment lifecycle
//!
//! Records append into the tail; the moment the tail reaches the segment
//! capacity ([`crate::resolve_segment_records`], default 512, overridable
//! with `PLASMA_SEGMENT_RECORDS`) it is sealed into an immutable
//! `Arc<[u64]>` and a fresh tail starts. Sealed segments never change
//! again, so clones share them by reference — which is what makes
//! streaming ingest's epoch snapshot cheap and lets
//! [`SketchSet::is_prefix_of`] verify lineage by pointer comparison
//! before falling back to bytes. Segment geometry is pure storage
//! layout: sketch bytes, band keys, and probe outputs are bit-identical
//! at every capacity.
//!
//! # Kernel shape
//!
//! Both families run **dim-outer, lane-inner**: each record's dimensions
//! are streamed once, and every hash lane is updated in the inner loop.
//! The item-dependent half of the keyed hash ([`spread_item`]) is computed
//! once per dimension instead of once per `(dimension, lane)` pair, and
//! the per-lane state (`n_hashes` running minima, or `n_hashes` running
//! dot products) stays cache-resident across the whole record. The values
//! produced are bit-identical to the textbook lane-outer formulation —
//! minima are order-free and each lane's dot product still accumulates
//! dimensions in record order.
//!
//! # Parallelism
//!
//! [`Sketcher::sketch_all`], [`Sketcher::extend_sketches`], and
//! [`Sketcher::extend_batch`] shard the record range across threads: the
//! flat output buffer is pre-sized and split into disjoint per-shard
//! slices (`par_chunks_mut`), so workers write without synchronization
//! and the result is bit-identical for every thread count.
//! [`Sketcher::with_parallelism`] pins the thread count (`Some(1)` =
//! sequential, `None` = all cores).
//!
//! # Streaming growth and epochs
//!
//! A corpus that grows while sessions probe it appends records with
//! [`Sketcher::extend_batch`]: the new records are sketched into the
//! existing flat buffer (in parallel, bit-identical to one-at-a-time
//! [`Sketcher::sketch_into`] appends), the old sketches stay byte-for-byte
//! untouched, and the set's [`SketchSet::epoch`] counter advances by one.
//! The epoch is what lets a knowledge cache distinguish "the same corpus,
//! grown" (old pair memos remain valid — see
//! `plasma_core::cache::SharedKnowledgeCache::grow`) from "a different
//! corpus" (cold cache). A zero-record batch is a no-op and does *not*
//! bump the epoch.

use std::sync::Arc;

use plasma_data::hash::{keyed_hash_spread, spread_item};
use plasma_data::vector::SparseVector;
use rayon::prelude::*;

use crate::family::LshFamily;
use crate::{resolve_parallelism, resolve_segment_records};

/// Per-lane key schedule constants (one odd multiplier per family, so the
/// two families draw independent hash function sequences from one seed).
const MINHASH_LANE_MUL: u64 = 0xA24B_AED4_963E_E407;
const SIMHASH_LANE_MUL: u64 = 0x9E6C_63D0_9759_27F1;

/// Below this much total work (`records · n_hashes`), sharding costs more
/// than it saves and sketching stays sequential.
const MIN_PARALLEL_WORK: usize = 1 << 13;

/// Generates sketches for one dataset.
#[derive(Debug, Clone)]
pub struct Sketcher {
    family: LshFamily,
    n_hashes: usize,
    seed: u64,
    /// Precomputed per-lane hash keys (`seed ^ h·MUL` for lane `h`).
    lane_keys: Vec<u64>,
    /// Thread count for whole-dataset sketching; `None` = all cores.
    parallelism: Option<usize>,
    /// Records per sealed segment of the sets this sketcher creates;
    /// `None` = the process default (see [`resolve_segment_records`]).
    segment_records: Option<usize>,
}

impl Sketcher {
    /// Creates a sketcher producing `n_hashes` hashes per record.
    pub fn new(family: LshFamily, n_hashes: usize, seed: u64) -> Self {
        assert!(n_hashes > 0, "sketches need at least one hash");
        Self {
            family,
            n_hashes,
            seed,
            lane_keys: lane_keys(family, seed, 0, n_hashes),
            parallelism: None,
            segment_records: None,
        }
    }

    /// Pins the thread count used by [`sketch_all`](Self::sketch_all) and
    /// [`extend_sketches`](Self::extend_sketches). `Some(1)` forces the
    /// sequential path; `None` (the default) uses all cores. Output is
    /// bit-identical either way.
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Pins the records-per-segment of the sets this sketcher *creates*
    /// (rounded up to a power of two; appends to an existing set keep
    /// that set's geometry). The default — 512, or the
    /// `PLASMA_SEGMENT_RECORDS` override — suits production; tests pin
    /// small capacities to exercise many-segment layouts. Sketch bytes
    /// and probe outputs are identical at every capacity.
    pub fn with_segment_records(mut self, segment_records: usize) -> Self {
        self.segment_records = Some(segment_records);
        self
    }

    /// `log2` of the resolved records-per-segment for new sets.
    fn seg_shift(&self) -> u32 {
        resolve_segment_records(self.segment_records).trailing_zeros()
    }

    /// Number of hashes per sketch.
    pub fn n_hashes(&self) -> usize {
        self.n_hashes
    }

    /// The hash family.
    pub fn family(&self) -> LshFamily {
        self.family
    }

    /// Sketches every record, sharding across threads. Runtime is
    /// `O(records · nnz · n_hashes / threads)` with one streaming pass
    /// over each record's dimensions.
    pub fn sketch_all(&self, records: &[SparseVector]) -> SketchSet {
        let mut set =
            SketchSet::with_segments(self.family, self.n_hashes, self.seed, self.seg_shift());
        if records.is_empty() {
            return set;
        }
        let buf = self.sketch_batch_words(records);
        set.append_words(&buf, records.len());
        set
    }

    /// Sketches a batch into one flat record-major buffer, sharding
    /// across threads into disjoint slices — the kernel half shared by
    /// [`sketch_all`](Self::sketch_all) and
    /// [`extend_batch`](Self::extend_batch). Keeping the parallel write
    /// target flat (and copying into the segmented store afterwards, an
    /// O(batch) move) means thread sharding never interacts with segment
    /// boundaries, so outputs stay bit-identical at every
    /// (threads × segment capacity) combination.
    fn sketch_batch_words(&self, records: &[SparseVector]) -> Vec<u64> {
        let k = records.len();
        let stride = SketchSet::stride_for(self.family, self.n_hashes);
        let mut buf = vec![0u64; k * stride];
        let threads = self.threads_for(k).min(k);
        if threads <= 1 {
            self.sketch_shard(records, &mut buf);
        } else {
            let shard_records = k.div_ceil(threads);
            buf.par_chunks_mut(shard_records * stride)
                .enumerate_for_each(|shard, slice| {
                    let lo = shard * shard_records;
                    let hi = (lo + shard_records).min(k);
                    self.sketch_shard(&records[lo..hi], slice);
                });
        }
        buf
    }

    /// Appends one record's sketch to `set`. The per-dim hash scratch
    /// (spread/dot buffers) is hoisted into a thread-local and reused
    /// across calls, the same way the bulk kernels hoist it across a
    /// shard's records — a record-at-a-time ingest loop allocates once
    /// per thread, not once per record. Does not touch
    /// [`SketchSet::epoch`]; versioned growth goes through
    /// [`extend_batch`](Self::extend_batch).
    pub fn sketch_into(&self, record: &SparseVector, set: &mut SketchSet) {
        debug_assert_eq!(set.family, self.family);
        debug_assert_eq!(set.n_hashes, self.n_hashes);
        debug_assert_eq!(set.seed, self.seed, "hash seed mismatch in sketch_into");
        APPEND_SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            s.words.clear();
            s.words.resize(set.stride, 0);
            match self.family {
                LshFamily::MinHash => {
                    minhash_lanes(record, &self.lane_keys, &mut s.words, &mut s.spreads);
                }
                LshFamily::SimHash => {
                    simhash_lanes(record, &self.lane_keys, 0, &mut s.words, &mut s.dots);
                }
            }
            set.append_words(&s.words, 1);
        });
    }

    /// Appends a batch of records to an existing set — the amortized
    /// streaming-ingest form of [`sketch_into`](Self::sketch_into). New
    /// records are sketched in parallel into pre-sized disjoint slices of
    /// the flat buffer (same dim-outer kernels and sharding as
    /// [`sketch_all`](Self::sketch_all)); existing sketches are untouched
    /// byte for byte, so the grown set is an exact prefix-extension of
    /// the old one and every memo over old pairs stays valid. Each
    /// non-empty batch advances [`SketchSet::epoch`] by one; an empty
    /// batch is a no-op that leaves the epoch alone.
    ///
    /// The appended sketches are bit-identical to both one-at-a-time
    /// `sketch_into` appends and a from-scratch
    /// [`sketch_all`](Self::sketch_all) over the full corpus, at every
    /// thread count.
    ///
    /// ```
    /// use plasma_data::vector::SparseVector;
    /// use plasma_lsh::family::LshFamily;
    /// use plasma_lsh::sketch::Sketcher;
    ///
    /// let records: Vec<SparseVector> = (0..6)
    ///     .map(|i| SparseVector::from_set(vec![i, i + 1, i + 2]))
    ///     .collect();
    /// let sketcher = Sketcher::new(LshFamily::MinHash, 32, 7);
    ///
    /// let mut grown = sketcher.sketch_all(&records[..4]);
    /// assert_eq!(grown.epoch(), 0);
    /// sketcher.extend_batch(&records[4..], &mut grown);
    /// assert_eq!((grown.len(), grown.epoch()), (6, 1));
    ///
    /// // Bit-identical to sketching the full corpus in one pass.
    /// let bulk = sketcher.sketch_all(&records);
    /// assert!(bulk.is_prefix_of(&grown) && grown.is_prefix_of(&bulk));
    ///
    /// // Empty batches are no-ops: no growth, no epoch bump.
    /// sketcher.extend_batch(&[], &mut grown);
    /// assert_eq!((grown.len(), grown.epoch()), (6, 1));
    /// ```
    pub fn extend_batch(&self, new_records: &[SparseVector], set: &mut SketchSet) {
        assert_eq!(set.family, self.family, "family mismatch in extend_batch");
        assert_eq!(
            set.n_hashes, self.n_hashes,
            "n_hashes mismatch in extend_batch"
        );
        assert_eq!(
            set.seed, self.seed,
            "hash seed mismatch in extend_batch: appending with a different \
             seed would mix hash universes and poison every cross-batch pair"
        );
        let k = new_records.len();
        if k == 0 {
            return;
        }
        // Sketch the batch into a flat scratch buffer (parallel, disjoint
        // slices), then move it into the segmented store: O(batch) total,
        // independent of how many records the set already holds. Existing
        // sealed segments and tail bytes are untouched.
        let buf = self.sketch_batch_words(new_records);
        set.append_words(&buf, k);
        set.epoch += 1;
    }

    /// Sequentially sketches a contiguous shard of records into its
    /// pre-sized slice of the flat buffer.
    fn sketch_shard(&self, records: &[SparseVector], out: &mut [u64]) {
        let stride = SketchSet::stride_for(self.family, self.n_hashes);
        let mut scratch = Scratch::default();
        for (k, record) in records.iter().enumerate() {
            self.sketch_record(record, &mut out[k * stride..(k + 1) * stride], &mut scratch);
        }
    }

    /// Sketches one record into its (zeroed) output slice. `scratch`
    /// holds the reusable spread/dot buffers so a shard allocates once,
    /// not once per record.
    fn sketch_record(&self, record: &SparseVector, out: &mut [u64], scratch: &mut Scratch) {
        match self.family {
            LshFamily::MinHash => minhash_lanes(record, &self.lane_keys, out, &mut scratch.spreads),
            LshFamily::SimHash => simhash_lanes(record, &self.lane_keys, 0, out, &mut scratch.dots),
        }
    }

    /// Extends an existing sketch set to `new_n` hashes per record,
    /// recomputing only the added hashes. Because every hash position is
    /// keyed independently, the extended set's prefix is bit-identical to
    /// the original — so cached `(m, n)` pair memos remain valid and the
    /// knowledge cache can grow its resolution instead of rebuilding
    /// (§2.2.1's re-use across iterations, applied to sketches).
    pub fn extend_sketches(
        &self,
        records: &[SparseVector],
        existing: &SketchSet,
        new_n: usize,
    ) -> SketchSet {
        assert_eq!(existing.family, self.family);
        assert_eq!(existing.seed, self.seed, "hash seed mismatch");
        assert_eq!(
            existing.len(),
            records.len(),
            "record/sketch count mismatch"
        );
        assert!(
            new_n >= existing.n_hashes,
            "extension cannot shrink a sketch ({new_n} < {})",
            existing.n_hashes
        );
        let n = records.len();
        let old_n = existing.n_hashes;
        let tail_keys = lane_keys(self.family, self.seed, old_n, new_n);
        let mut out = SketchSet::with_segments(self.family, new_n, self.seed, self.seg_shift());
        // Same corpus, higher resolution: the growth lineage carries over.
        out.epoch = existing.epoch;
        if n == 0 {
            return out;
        }
        let new_stride = out.stride;
        let mut buf = vec![0u64; n * new_stride];
        let threads = self.threads_for(n).min(n);
        let extend_shard = |lo: usize, records: &[SparseVector], slice: &mut [u64]| {
            let mut scratch = Scratch::default();
            for (k, record) in records.iter().enumerate() {
                let dst = &mut slice[k * new_stride..(k + 1) * new_stride];
                let old = existing.sketch(lo + k);
                dst[..old.len()].copy_from_slice(old);
                match self.family {
                    LshFamily::MinHash => {
                        minhash_lanes(record, &tail_keys, &mut dst[old_n..], &mut scratch.spreads);
                    }
                    LshFamily::SimHash => {
                        // Clear stale bits the old final word may carry
                        // past `old_n`, then pack the new lanes at their
                        // absolute positions.
                        if !old_n.is_multiple_of(64) {
                            dst[old_n / 64] &= (1u64 << (old_n % 64)) - 1;
                        }
                        simhash_lanes(record, &tail_keys, old_n, dst, &mut scratch.dots);
                    }
                }
            }
        };
        if threads <= 1 {
            extend_shard(0, records, &mut buf);
        } else {
            let shard_records = n.div_ceil(threads);
            buf.par_chunks_mut(shard_records * new_stride)
                .enumerate_for_each(|shard, slice| {
                    let lo = shard * shard_records;
                    let hi = (lo + shard_records).min(n);
                    extend_shard(lo, &records[lo..hi], slice);
                });
        }
        out.append_words(&buf, n);
        out
    }

    /// Thread count for a whole-dataset pass over `records` records.
    fn threads_for(&self, records: usize) -> usize {
        if records * self.n_hashes < MIN_PARALLEL_WORK {
            return 1;
        }
        resolve_parallelism(self.parallelism)
    }
}

/// The per-lane key schedule: `seed ^ h·MUL` for `h` in `[from, to)`.
fn lane_keys(family: LshFamily, seed: u64, from: usize, to: usize) -> Vec<u64> {
    let mul = match family {
        LshFamily::MinHash => MINHASH_LANE_MUL,
        LshFamily::SimHash => SIMHASH_LANE_MUL,
    };
    (from..to)
        .map(|h| seed ^ (h as u64).wrapping_mul(mul))
        .collect()
}

/// Reusable per-shard scratch buffers (dim spreads for MinHash, lane dot
/// products for SimHash, plus a one-record word staging buffer for the
/// append path).
#[derive(Default)]
struct Scratch {
    spreads: Vec<u64>,
    dots: Vec<f64>,
    words: Vec<u64>,
}

thread_local! {
    /// The append path's scratch, hoisted across [`Sketcher::sketch_into`]
    /// calls: a record-at-a-time ingest loop reuses one spread/dot/word
    /// buffer per thread instead of reallocating per record, mirroring the
    /// per-shard hoist of the bulk kernels.
    static APPEND_SCRATCH: std::cell::RefCell<Scratch> = const {
        std::cell::RefCell::new(Scratch {
            spreads: Vec::new(),
            dots: Vec::new(),
            words: Vec::new(),
        })
    };
}

/// Lanes per register block of the MinHash kernel: eight independent
/// mix chains saturate the multiplier ports while the running minima stay
/// in registers instead of round-tripping through the output slice.
const LANE_BLOCK: usize = 8;

/// Loop-inverted MinHash: the item-dependent hash half ([`spread_item`])
/// is computed once per dimension into `spreads` (the streaming pass that
/// replaces `O(nnz · n_hashes)` recomputation), then lane blocks of
/// [`LANE_BLOCK`] running minima consume it from registers.
fn minhash_lanes(record: &SparseVector, keys: &[u64], out: &mut [u64], spreads: &mut Vec<u64>) {
    debug_assert_eq!(keys.len(), out.len());
    spreads.clear();
    spreads.extend(record.dims().iter().map(|&d| spread_item(d)));
    let mut lane = 0;
    while lane < keys.len() {
        let end = (lane + LANE_BLOCK).min(keys.len());
        if end - lane == LANE_BLOCK {
            let block: &[u64; LANE_BLOCK] = keys[lane..end].try_into().expect("full block");
            let mut best = [u64::MAX; LANE_BLOCK];
            for &sp in spreads.iter() {
                for l in 0..LANE_BLOCK {
                    // A rarely-taken branch beats a conditional move: the
                    // minima stabilize after the first few dims, so the
                    // predictor removes the loop-carried dependency.
                    let v = keyed_hash_spread(block[l], sp);
                    if v < best[l] {
                        best[l] = v;
                    }
                }
            }
            out[lane..end].copy_from_slice(&best);
        } else {
            // Tail block (n_hashes not a multiple of LANE_BLOCK).
            for (slot, &key) in out[lane..end].iter_mut().zip(&keys[lane..end]) {
                let mut best = u64::MAX;
                for &sp in spreads.iter() {
                    best = best.min(keyed_hash_spread(key, sp));
                }
                *slot = best;
            }
        }
        lane += LANE_BLOCK;
    }
}

/// Dim-outer SimHash: one [`spread_item`] per dimension, all lanes' dot
/// products accumulated in the inner loop, then signs packed into `words`
/// starting at absolute bit position `first_lane`. Each lane's sum visits
/// dimensions in record order, so results match the lane-outer
/// formulation bit for bit.
fn simhash_lanes(
    record: &SparseVector,
    keys: &[u64],
    first_lane: usize,
    words: &mut [u64],
    dots: &mut Vec<f64>,
) {
    dots.clear();
    dots.resize(keys.len(), 0.0);
    for (d, w) in record.iter() {
        let spread = spread_item(d);
        for (acc, &key) in dots.iter_mut().zip(keys) {
            *acc += w * gaussian_from_hash(keyed_hash_spread(key, spread));
        }
    }
    for (k, &dot) in dots.iter().enumerate() {
        if dot >= 0.0 {
            let h = first_lane + k;
            words[h / 64] |= 1u64 << (h % 64);
        }
    }
}

/// Pseudo-random standard-normal component of a hyperplane at one
/// dimension, derived from the already-keyed hash `h` so planes never
/// need materializing (two 32-bit halves → Box–Muller).
#[inline]
fn gaussian_from_hash(h: u64) -> f64 {
    let u1 = (((h >> 32) as u32 as f64) + 1.0) / (u32::MAX as f64 + 2.0);
    let u2 = ((h as u32 as f64) + 0.5) / (u32::MAX as f64 + 1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Segmented storage of all sketches for a dataset.
///
/// Sketch words live in sealed, exactly-full, immutable `Arc<[u64]>`
/// segments plus one mutable tail, each a flat record-major run of
/// `segment_records` sketches (see the module docs for the lifecycle).
/// Cloning a set shares every sealed segment by reference and copies only
/// the tail — the O(segments + tail) epoch snapshot streaming ingest
/// relies on.
///
/// A set carries a monotone **epoch** counter versioning streamed growth:
/// freshly built sets start at epoch 0, and every non-empty
/// [`Sketcher::extend_batch`] advances it by one while leaving all prior
/// sketch bytes untouched. Consumers holding per-pair knowledge (the
/// knowledge cache) use the epoch to tell "the same corpus, grown" —
/// where memos over old pairs remain valid — from "a different corpus".
#[derive(Debug, Clone)]
pub struct SketchSet {
    family: LshFamily,
    n_hashes: usize,
    /// The hash seed the sketches were keyed with — carried so lineage
    /// checks ([`is_prefix_of`](Self::is_prefix_of), append asserts) can
    /// refuse to mix hash universes.
    seed: u64,
    stride: usize,
    records: usize,
    epoch: u64,
    /// `log2` of records per segment; power-of-two capacity makes
    /// record→segment indexing a shift and a mask.
    seg_shift: u32,
    /// Sealed segments, each exactly `1 << seg_shift` records of
    /// `stride` words. Immutable once sealed; shared across clones.
    sealed: Vec<Arc<[u64]>>,
    /// The mutable tail segment: `records % (1 << seg_shift)` records.
    /// Sealing is eager, so the tail is always strictly under capacity.
    tail: Vec<u64>,
}

impl SketchSet {
    fn stride_for(family: LshFamily, n_hashes: usize) -> usize {
        match family {
            LshFamily::MinHash => n_hashes,
            LshFamily::SimHash => n_hashes.div_ceil(64),
        }
    }

    /// An empty appendable set with `1 << seg_shift` records per segment.
    fn with_segments(family: LshFamily, n_hashes: usize, seed: u64, seg_shift: u32) -> Self {
        let stride = Self::stride_for(family, n_hashes);
        Self {
            family,
            n_hashes,
            seed,
            stride,
            records: 0,
            epoch: 0,
            seg_shift,
            sealed: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// An empty appendable set (used by streaming callers). `seed` is the
    /// hash seed of the [`Sketcher`] that will fill it. Segment capacity
    /// is the process default ([`resolve_segment_records`]).
    pub fn empty(family: LshFamily, n_hashes: usize, seed: u64) -> Self {
        Self::with_segments(
            family,
            n_hashes,
            seed,
            resolve_segment_records(None).trailing_zeros(),
        )
    }

    /// An empty appendable set with an explicit records-per-segment
    /// (rounded up to a power of two) — the test hook for exercising
    /// many-segment layouts without the `PLASMA_SEGMENT_RECORDS`
    /// override. Layout only; sketch bytes are identical at any capacity.
    pub fn empty_with_segment_records(
        family: LshFamily,
        n_hashes: usize,
        seed: u64,
        segment_records: usize,
    ) -> Self {
        Self::with_segments(
            family,
            n_hashes,
            seed,
            resolve_segment_records(Some(segment_records)).trailing_zeros(),
        )
    }

    /// Words per segment (`segment_records · stride`).
    #[inline]
    fn seg_words(&self) -> usize {
        (1usize << self.seg_shift) * self.stride
    }

    /// Moves a flat record-major batch of `k` sketches into the store:
    /// fill the tail, seal it the moment it reaches capacity, repeat.
    /// O(batch) — existing sealed segments are never touched, and sealing
    /// cost amortizes to O(1) per word appended.
    fn append_words(&mut self, mut src: &[u64], k: usize) {
        debug_assert_eq!(src.len(), k * self.stride);
        let seg_words = self.seg_words();
        while !src.is_empty() {
            let take = (seg_words - self.tail.len()).min(src.len());
            self.tail.extend_from_slice(&src[..take]);
            src = &src[take..];
            if self.tail.len() == seg_words {
                let full = std::mem::replace(&mut self.tail, Vec::with_capacity(seg_words));
                self.sealed.push(Arc::from(full));
            }
        }
        self.records += k;
    }

    /// Sketch words per record for a `(family, n_hashes)` shape — the
    /// flat-storage stride. Exposed so serializers (the durable snapshot
    /// writer) can size and validate word payloads without poking at
    /// storage internals.
    pub fn words_per_record(family: LshFamily, n_hashes: usize) -> usize {
        Self::stride_for(family, n_hashes)
    }

    /// The store's word runs in flat record-major order: every sealed
    /// segment, then the mutable tail. Concatenating the yielded slices
    /// reproduces exactly `len() · words_per_record` words — the byte
    /// payload a durable snapshot persists, and the input
    /// [`from_words`](Self::from_words) restores from.
    pub fn word_segments(&self) -> impl Iterator<Item = &[u64]> {
        self.sealed
            .iter()
            .map(|s| &s[..])
            .chain(std::iter::once(&self.tail[..]))
    }

    /// Restores a set from its flat record-major words — the durable
    /// snapshot loader. The result is byte-identical to the set whose
    /// [`word_segments`](Self::word_segments) produced `words`, including
    /// its growth `epoch` and segment geometry, so lineage checks
    /// ([`is_prefix_of`](Self::is_prefix_of)) and epoch-gated cache growth
    /// behave exactly as they would against the original.
    ///
    /// # Panics
    ///
    /// Panics when `words.len()` is not exactly
    /// `records · words_per_record(family, n_hashes)`; callers restoring
    /// untrusted bytes must validate the length first (the durable loader
    /// does, returning a structured error instead).
    pub fn from_words(
        family: LshFamily,
        n_hashes: usize,
        seed: u64,
        segment_records: usize,
        epoch: u64,
        records: usize,
        words: &[u64],
    ) -> SketchSet {
        let stride = Self::stride_for(family, n_hashes);
        assert_eq!(
            words.len(),
            records * stride,
            "snapshot words mismatch: {} words cannot hold {records} records \
             of stride {stride}",
            words.len()
        );
        let mut set = Self::with_segments(
            family,
            n_hashes,
            seed,
            resolve_segment_records(Some(segment_records)).trailing_zeros(),
        );
        set.append_words(words, records);
        set.epoch = epoch;
        set
    }

    /// Number of sketched records.
    pub fn len(&self) -> usize {
        self.records
    }

    /// True when no records have been sketched.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Hashes per record.
    pub fn n_hashes(&self) -> usize {
        self.n_hashes
    }

    /// The growth epoch: 0 for a freshly built set, advanced by one for
    /// every non-empty [`Sketcher::extend_batch`]. Single-record
    /// [`Sketcher::sketch_into`] appends do not version the set.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The hash seed this set's sketches were keyed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when `other` extends this set byte for byte: same family,
    /// hash count, and hash seed, at least as many records, and every one
    /// of this set's sketch words identical at the same position. This is the invariant
    /// a knowledge cache checks before carrying pair memos across an
    /// epoch bump — old-pair memos are valid against the grown set
    /// exactly because the old sketches are unchanged.
    ///
    /// When both sets share segment geometry — the streaming-ingest case,
    /// where the grown set is a clone of the old snapshot — sealed
    /// segments are compared by `Arc` pointer first, so the lineage check
    /// is O(segments + tail) instead of O(corpus). Byte comparison is the
    /// fallback for independently built (or differently segmented) sets.
    pub fn is_prefix_of(&self, other: &SketchSet) -> bool {
        if !(self.family == other.family
            && self.n_hashes == other.n_hashes
            && self.seed == other.seed
            && self.records <= other.records)
        {
            return false;
        }
        if self.seg_shift == other.seg_shift {
            // `records <= other.records` ⇒ every sealed segment of self
            // has a counterpart at the same index in other.
            for (a, b) in self.sealed.iter().zip(&other.sealed) {
                if !(Arc::ptr_eq(a, b) || a[..] == b[..]) {
                    return false;
                }
            }
            return other.words_match(self.sealed.len() * self.seg_words(), &self.tail);
        }
        // Different segment geometries: walk this set's flat word order
        // against the other's layout, chunk by chunk.
        let mut start = 0;
        for seg in &self.sealed {
            if !other.words_match(start, seg) {
                return false;
            }
            start += seg.len();
        }
        other.words_match(start, &self.tail)
    }

    /// True when `expect` equals this set's words at flat positions
    /// `[start, start + expect.len())` (record-major order), walking
    /// across segment boundaries.
    fn words_match(&self, mut start: usize, mut expect: &[u64]) -> bool {
        let seg_words = self.seg_words();
        while !expect.is_empty() {
            let (seg, off) = (start / seg_words, start % seg_words);
            let words: &[u64] = if seg < self.sealed.len() {
                &self.sealed[seg]
            } else if seg == self.sealed.len() {
                &self.tail
            } else {
                return false;
            };
            if off >= words.len() {
                return false;
            }
            let take = (words.len() - off).min(expect.len());
            if words[off..off + take] != expect[..take] {
                return false;
            }
            start += take;
            expect = &expect[take..];
        }
        true
    }

    /// The hash family.
    pub fn family(&self) -> LshFamily {
        self.family
    }

    /// Records per sealed segment (a power of two).
    pub fn segment_records(&self) -> usize {
        1 << self.seg_shift
    }

    /// Number of sealed (immutable, `Arc`-shared) segments.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Bytes a snapshot clone actually copies: the mutable tail plus one
    /// `Arc` pointer per sealed segment. Bounded by the segment size —
    /// O(segments + tail), not O(corpus) — which is what makes streaming
    /// ingest's per-epoch snapshot cheap (`repro bench` records this as
    /// `ingest_scaling.snapshot_clone_bytes`).
    pub fn snapshot_clone_bytes(&self) -> usize {
        self.tail.len() * std::mem::size_of::<u64>()
            + self.sealed.len() * std::mem::size_of::<Arc<[u64]>>()
    }

    /// Raw sketch words of record `i` — contiguous within its segment,
    /// located with a shift and a mask.
    #[inline]
    pub fn sketch(&self, i: usize) -> &[u64] {
        let seg = i >> self.seg_shift;
        let off = (i & (self.segment_records() - 1)) * self.stride;
        let words: &[u64] = if seg < self.sealed.len() {
            &self.sealed[seg]
        } else {
            &self.tail
        };
        &words[off..off + self.stride]
    }

    /// Counts matching hashes between records `i` and `j` among the first
    /// `n` hashes (`n ≤ n_hashes`).
    pub fn matches(&self, i: usize, j: usize, n: usize) -> u32 {
        debug_assert!(n <= self.n_hashes);
        let a = self.sketch(i);
        let b = self.sketch(j);
        match self.family {
            LshFamily::MinHash => {
                let mut m = 0u32;
                for k in 0..n {
                    if a[k] == b[k] {
                        m += 1;
                    }
                }
                m
            }
            LshFamily::SimHash => {
                let mut mismatches = 0u32;
                let full_words = n / 64;
                for w in 0..full_words {
                    mismatches += (a[w] ^ b[w]).count_ones();
                }
                let rem = n % 64;
                if rem > 0 {
                    let mask = (1u64 << rem) - 1;
                    mismatches += ((a[full_words] ^ b[full_words]) & mask).count_ones();
                }
                n as u32 - mismatches
            }
        }
    }

    /// Counts matching hashes between records `i` and `j` at positions
    /// `[from, to)`, so callers holding a memoized prefix count extend it
    /// incrementally instead of rescanning from position zero:
    /// `matches(i, j, to) == matches(i, j, from) + matches_range(i, j, from, to)`,
    /// exactly. This is what lets the knowledge cache resume a pair's
    /// comparison from its deepest memoized batch step.
    pub fn matches_range(&self, i: usize, j: usize, from: usize, to: usize) -> u32 {
        debug_assert!(from <= to && to <= self.n_hashes);
        let a = self.sketch(i);
        let b = self.sketch(j);
        match self.family {
            LshFamily::MinHash => {
                let mut m = 0u32;
                for k in from..to {
                    if a[k] == b[k] {
                        m += 1;
                    }
                }
                m
            }
            LshFamily::SimHash => {
                if from == to {
                    return 0;
                }
                let mut mismatches = 0u32;
                let first_word = from / 64;
                let last_word = (to - 1) / 64;
                for w in first_word..=last_word {
                    let mut bits = a[w] ^ b[w];
                    if w == first_word && !from.is_multiple_of(64) {
                        bits &= !((1u64 << (from % 64)) - 1);
                    }
                    if w == last_word && !to.is_multiple_of(64) {
                        bits &= (1u64 << (to % 64)) - 1;
                    }
                    mismatches += bits.count_ones();
                }
                (to - from) as u32 - mismatches
            }
        }
    }

    /// Bytes consumed by the sketch words across all segments (reported
    /// by Fig. 2.9-style accounting) — `records · stride · 8`, exactly
    /// what the flat store reported.
    pub fn byte_size(&self) -> usize {
        (self.sealed.len() * self.seg_words() + self.tail.len()) * std::mem::size_of::<u64>()
    }

    /// Min-hash value of record `i` at hash position `h` (MinHash only);
    /// used by banding-based candidate generation.
    pub fn minhash_value(&self, i: usize, h: usize) -> u64 {
        debug_assert_eq!(self.family, LshFamily::MinHash);
        self.sketch(i)[h]
    }

    /// Fills `out[k]` with the band key of record `first + k` — the bulk
    /// form of [`band_key`](Self::band_key) the banded join's sharded
    /// bucket build streams into disjoint slices of its flat key table
    /// (one contiguous record range per worker).
    pub fn band_keys_into(&self, band: usize, band_width: usize, first: usize, out: &mut [u64]) {
        debug_assert!(first + out.len() <= self.records);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.band_key(first + k, band, band_width);
        }
    }

    /// `band_width` consecutive hashes starting at `band * band_width`,
    /// mixed into one u64 band key (both families).
    pub fn band_key(&self, i: usize, band: usize, band_width: usize) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        // Resolve the record's segment once; the per-lane reads then
        // index a plain slice (this is the hot loop of the banded join's
        // key build).
        let sk = self.sketch(i);
        match self.family {
            LshFamily::MinHash => {
                let hi = ((band + 1) * band_width).min(self.n_hashes);
                for &w in &sk[band * band_width..hi] {
                    acc = (acc ^ w).wrapping_mul(0x1000_0000_01b3);
                }
            }
            LshFamily::SimHash => {
                for h in band * band_width..((band + 1) * band_width).min(self.n_hashes) {
                    let bit = (sk[h / 64] >> (h % 64)) & 1;
                    acc = (acc ^ bit).wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::hash::keyed_hash;
    use plasma_data::rng::seeded;
    use plasma_data::similarity::{cosine, jaccard};
    use rand::Rng;

    fn random_set(rng: &mut impl Rng, universe: u32, len: usize) -> SparseVector {
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(rng.gen_range(0..universe));
        }
        SparseVector::from_set(items)
    }

    #[test]
    fn minhash_match_rate_estimates_jaccard() {
        let mut rng = seeded(1);
        let a = random_set(&mut rng, 1000, 120);
        let b = {
            // Overlap: share a's first half.
            let mut items: Vec<u32> = a.dims()[..60].to_vec();
            items.extend((0..60).map(|_| rng.gen_range(1000..2000)));
            SparseVector::from_set(items)
        };
        let truth = jaccard(&a, &b);
        let sk = Sketcher::new(LshFamily::MinHash, 512, 7).sketch_all(&[a, b]);
        let m = sk.matches(0, 1, 512) as f64 / 512.0;
        assert!(
            (m - truth).abs() < 0.07,
            "minhash rate {m} vs jaccard {truth}"
        );
    }

    #[test]
    fn simhash_match_rate_estimates_cosine() {
        let a = SparseVector::from_dense(&[1.0, 2.0, 3.0, 0.5, -1.0]);
        let b = SparseVector::from_dense(&[1.1, 1.9, 2.7, 0.7, -0.4]);
        let truth = cosine(&a, &b);
        let sk = Sketcher::new(LshFamily::SimHash, 2048, 3).sketch_all(&[a, b]);
        let rate = sk.matches(0, 1, 2048) as f64 / 2048.0;
        let est = LshFamily::SimHash.similarity_from_match_rate(rate);
        assert!(
            (est - truth).abs() < 0.08,
            "simhash estimate {est} vs cosine {truth}"
        );
    }

    #[test]
    fn identical_records_match_everywhere() {
        let v = SparseVector::from_dense(&[0.3, -2.0, 1.0]);
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let sk = Sketcher::new(fam, 96, 5).sketch_all(&[v.clone(), v.clone()]);
            assert_eq!(sk.matches(0, 1, 96), 96);
        }
    }

    #[test]
    fn prefix_matches_consistent() {
        let mut rng = seeded(2);
        let a = random_set(&mut rng, 500, 40);
        let b = random_set(&mut rng, 500, 40);
        let sk = Sketcher::new(LshFamily::SimHash, 256, 9).sketch_all(&[a, b]);
        let mut prev = 0;
        for n in [32, 64, 100, 200, 256] {
            let m = sk.matches(0, 1, n);
            assert!(m >= prev, "match count must be monotone in prefix length");
            assert!(m <= n as u32);
            prev = m;
        }
    }

    #[test]
    fn range_matches_sum_to_prefix_matches() {
        let mut rng = seeded(4);
        let a = random_set(&mut rng, 500, 40);
        let b = random_set(&mut rng, 500, 45);
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let sk = Sketcher::new(fam, 200, 9).sketch_all(&[a.clone(), b.clone()]);
            // Arbitrary split points, including word-straddling ones.
            for splits in [
                vec![0, 200],
                vec![0, 32, 64, 200],
                vec![0, 1, 63, 65, 129, 200],
            ] {
                let mut total = 0;
                for w in splits.windows(2) {
                    total += sk.matches_range(0, 1, w[0], w[1]);
                }
                assert_eq!(total, sk.matches(0, 1, 200), "{fam:?} splits {splits:?}");
            }
            assert_eq!(sk.matches_range(0, 1, 77, 77), 0);
        }
    }

    #[test]
    fn band_keys_agree_for_identical_sketches() {
        let v = SparseVector::from_set(vec![1, 5, 9]);
        let sk = Sketcher::new(LshFamily::MinHash, 64, 11).sketch_all(&[v.clone(), v]);
        for band in 0..8 {
            assert_eq!(sk.band_key(0, band, 8), sk.band_key(1, band, 8));
        }
    }

    #[test]
    fn dim_outer_kernel_matches_lane_outer_reference() {
        // The loop inversion must reproduce the textbook lane-outer values
        // exactly: same keyed hashes, same minima, same sign bits.
        let mut rng = seeded(77);
        let records: Vec<SparseVector> = (0..6).map(|_| random_set(&mut rng, 600, 50)).collect();
        let n_hashes = 100;
        let seed = 13;
        let sk = Sketcher::new(LshFamily::MinHash, n_hashes, seed).sketch_all(&records);
        for (i, r) in records.iter().enumerate() {
            for h in 0..n_hashes {
                let key = seed ^ (h as u64).wrapping_mul(MINHASH_LANE_MUL);
                let expect = r
                    .dims()
                    .iter()
                    .map(|&d| keyed_hash(key, d))
                    .min()
                    .unwrap_or(u64::MAX);
                assert_eq!(sk.minhash_value(i, h), expect, "record {i} lane {h}");
            }
        }
        let dense: Vec<SparseVector> = (0..4)
            .map(|k| SparseVector::from_dense(&[0.5 + k as f64, -1.0, 2.5, 0.1 * k as f64]))
            .collect();
        let sh = Sketcher::new(LshFamily::SimHash, 70, seed).sketch_all(&dense);
        for (i, r) in dense.iter().enumerate() {
            for h in 0..70usize {
                let key = seed ^ (h as u64).wrapping_mul(SIMHASH_LANE_MUL);
                let mut dot = 0.0f64;
                for (d, w) in r.iter() {
                    dot += w * gaussian_from_hash(keyed_hash(key, d));
                }
                let bit = (sh.sketch(i)[h / 64] >> (h % 64)) & 1;
                assert_eq!(bit == 1, dot >= 0.0, "record {i} lane {h}");
            }
        }
    }

    #[test]
    fn parallel_sketching_is_bit_identical() {
        let mut rng = seeded(123);
        let records: Vec<SparseVector> = (0..64).map(|_| random_set(&mut rng, 2000, 80)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let serial = Sketcher::new(fam, 192, 5)
                .with_parallelism(Some(1))
                .sketch_all(&records);
            for threads in [2, 3, 8] {
                let par = Sketcher::new(fam, 192, 5)
                    .with_parallelism(Some(threads))
                    .sketch_all(&records);
                for i in 0..records.len() {
                    assert_eq!(
                        par.sketch(i),
                        serial.sketch(i),
                        "{fam:?} with {threads} threads diverged at record {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_extension_is_bit_identical() {
        let mut rng = seeded(321);
        let records: Vec<SparseVector> = (0..48).map(|_| random_set(&mut rng, 900, 64)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let base = Sketcher::new(fam, 96, 9).sketch_all(&records);
            let serial = Sketcher::new(fam, 96, 9)
                .with_parallelism(Some(1))
                .extend_sketches(&records, &base, 256);
            let par = Sketcher::new(fam, 96, 9)
                .with_parallelism(Some(4))
                .extend_sketches(&records, &base, 256);
            for i in 0..records.len() {
                assert_eq!(par.sketch(i), serial.sketch(i), "{fam:?} record {i}");
            }
        }
    }

    #[test]
    fn sketch_into_append_matches_bulk() {
        let mut rng = seeded(55);
        let records: Vec<SparseVector> = (0..10).map(|_| random_set(&mut rng, 300, 30)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let sketcher = Sketcher::new(fam, 80, 3);
            let bulk = sketcher.sketch_all(&records);
            let mut appended = SketchSet::empty(fam, 80, 3);
            for r in &records {
                sketcher.sketch_into(r, &mut appended);
            }
            assert_eq!(appended.len(), bulk.len());
            for i in 0..records.len() {
                assert_eq!(appended.sketch(i), bulk.sketch(i), "{fam:?} record {i}");
            }
        }
    }

    #[test]
    fn extension_preserves_prefix_and_matches_fresh() {
        let mut rng = seeded(31);
        let records: Vec<SparseVector> = (0..8).map(|_| random_set(&mut rng, 800, 60)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let small = Sketcher::new(fam, 64, 9).sketch_all(&records);
            let extended = Sketcher::new(fam, 64, 9).extend_sketches(&records, &small, 192);
            let fresh = Sketcher::new(fam, 192, 9).sketch_all(&records);
            assert_eq!(extended.n_hashes(), 192);
            for i in 0..records.len() {
                for j in (i + 1)..records.len() {
                    // Prefix identical to the small sketches…
                    assert_eq!(
                        extended.matches(i, j, 64),
                        small.matches(i, j, 64),
                        "{fam:?} prefix mismatch"
                    );
                    // …and the whole thing identical to a fresh sketch.
                    assert_eq!(
                        extended.matches(i, j, 192),
                        fresh.matches(i, j, 192),
                        "{fam:?} full mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn extend_batch_matches_bulk_and_append_paths() {
        let mut rng = seeded(77);
        let records: Vec<SparseVector> = (0..30).map(|_| random_set(&mut rng, 700, 40)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let sketcher = Sketcher::new(fam, 96, 5);
            let bulk = sketcher.sketch_all(&records);
            // Batch-extend in three uneven installments…
            let mut streamed = sketcher.sketch_all(&records[..7]);
            sketcher.extend_batch(&records[7..8], &mut streamed);
            sketcher.extend_batch(&records[8..21], &mut streamed);
            sketcher.extend_batch(&records[21..], &mut streamed);
            assert_eq!(streamed.len(), bulk.len());
            assert_eq!(streamed.epoch(), 3, "{fam:?}: one bump per batch");
            // …and one-at-a-time appends: all three paths byte-equal.
            let mut appended = SketchSet::empty(fam, 96, 5);
            for r in &records {
                sketcher.sketch_into(r, &mut appended);
            }
            for i in 0..records.len() {
                assert_eq!(streamed.sketch(i), bulk.sketch(i), "{fam:?} record {i}");
                assert_eq!(appended.sketch(i), bulk.sketch(i), "{fam:?} record {i}");
            }
            assert!(bulk.is_prefix_of(&streamed) && streamed.is_prefix_of(&bulk));
        }
    }

    #[test]
    fn extend_batch_is_bit_identical_at_every_thread_count() {
        let mut rng = seeded(88);
        let base: Vec<SparseVector> = (0..20).map(|_| random_set(&mut rng, 800, 50)).collect();
        let batch: Vec<SparseVector> = (0..37).map(|_| random_set(&mut rng, 800, 50)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let serial = {
                let sketcher = Sketcher::new(fam, 128, 3).with_parallelism(Some(1));
                let mut set = sketcher.sketch_all(&base);
                sketcher.extend_batch(&batch, &mut set);
                set
            };
            for threads in [2, 3, 8] {
                let sketcher = Sketcher::new(fam, 128, 3).with_parallelism(Some(threads));
                let mut set = sketcher.sketch_all(&base);
                sketcher.extend_batch(&batch, &mut set);
                assert_eq!(set.epoch(), 1);
                for i in 0..base.len() + batch.len() {
                    assert_eq!(
                        set.sketch(i),
                        serial.sketch(i),
                        "{fam:?} with {threads} threads diverged at record {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn append_then_bulk_equals_bulk_then_append() {
        // The satellite micro-assert: mixing the hoisted-scratch append
        // path with batch extension in either order produces byte-equal
        // sketch sets.
        let mut rng = seeded(99);
        let records: Vec<SparseVector> = (0..12).map(|_| random_set(&mut rng, 400, 35)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let sketcher = Sketcher::new(fam, 80, 11);
            // Append records 0..6 one at a time, then batch-extend 6..12.
            let mut append_first = SketchSet::empty(fam, 80, 11);
            for r in &records[..6] {
                sketcher.sketch_into(r, &mut append_first);
            }
            sketcher.extend_batch(&records[6..], &mut append_first);
            // Batch-extend 0..6 onto an empty set, then append 6..12.
            let mut bulk_first = SketchSet::empty(fam, 80, 11);
            sketcher.extend_batch(&records[..6], &mut bulk_first);
            for r in &records[6..] {
                sketcher.sketch_into(r, &mut bulk_first);
            }
            assert_eq!(append_first.len(), bulk_first.len());
            assert_eq!(append_first.epoch(), bulk_first.epoch());
            assert!(
                append_first.is_prefix_of(&bulk_first) && bulk_first.is_prefix_of(&append_first),
                "{fam:?}: orders must agree byte for byte"
            );
        }
    }

    #[test]
    fn zero_record_extend_batch_is_a_noop() {
        let mut rng = seeded(101);
        let records: Vec<SparseVector> = (0..5).map(|_| random_set(&mut rng, 300, 20)).collect();
        let sketcher = Sketcher::new(LshFamily::MinHash, 48, 2);
        let mut set = sketcher.sketch_all(&records);
        let reference = set.clone();
        sketcher.extend_batch(&[], &mut set);
        assert_eq!(set.len(), reference.len());
        assert_eq!(set.epoch(), 0, "an empty batch must not bump the epoch");
        assert!(reference.is_prefix_of(&set) && set.is_prefix_of(&reference));
    }

    #[test]
    fn prefix_check_rejects_diverged_sets() {
        let a = SparseVector::from_set(vec![1, 2, 3]);
        let b = SparseVector::from_set(vec![9, 10, 11]);
        let sketcher = Sketcher::new(LshFamily::MinHash, 32, 4);
        let small = sketcher.sketch_all(std::slice::from_ref(&a));
        let grown_same = sketcher.sketch_all(&[a.clone(), b.clone()]);
        let grown_other = sketcher.sketch_all(&[b, a]);
        assert!(small.is_prefix_of(&grown_same));
        assert!(!small.is_prefix_of(&grown_other), "reordered corpus");
        assert!(!grown_same.is_prefix_of(&small), "shrinking is not growth");
        let other_family = Sketcher::new(LshFamily::SimHash, 32, 4)
            .sketch_all(&[SparseVector::from_dense(&[1.0, 2.0])]);
        assert!(!other_family.is_prefix_of(&grown_same));
    }

    #[test]
    fn extension_to_same_size_is_identity() {
        let v = SparseVector::from_set(vec![1, 2, 3, 4, 5]);
        let records = vec![v.clone(), v];
        let sk = Sketcher::new(LshFamily::MinHash, 32, 2).sketch_all(&records);
        let ext = Sketcher::new(LshFamily::MinHash, 32, 2).extend_sketches(&records, &sk, 32);
        assert_eq!(ext.sketch(0), sk.sketch(0));
    }

    #[test]
    fn byte_size_accounts_storage() {
        let v = SparseVector::from_set(vec![1, 2]);
        let sk = Sketcher::new(LshFamily::MinHash, 16, 1).sketch_all(&[v.clone(), v]);
        assert_eq!(sk.byte_size(), 2 * 16 * 8);
        let v2 = SparseVector::from_dense(&[1.0]);
        let sk2 = Sketcher::new(LshFamily::SimHash, 128, 1).sketch_all(&[v2]);
        assert_eq!(sk2.byte_size(), 2 * 8);
    }

    #[test]
    fn segmented_store_is_bit_identical_to_near_flat_reference() {
        // A 4-record segment capacity (many segments) versus a capacity
        // larger than the corpus (everything in one tail — the flat
        // layout): every sketch byte-equal, including the exactly-full
        // boundary (16 = 4 segments, empty tail) and a 1-record tail.
        let mut rng = seeded(202);
        let records: Vec<SparseVector> = (0..17).map(|_| random_set(&mut rng, 600, 40)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            for n in [16usize, 17] {
                let segmented = Sketcher::new(fam, 96, 7)
                    .with_segment_records(4)
                    .sketch_all(&records[..n]);
                let flat = Sketcher::new(fam, 96, 7)
                    .with_segment_records(1 << 20)
                    .sketch_all(&records[..n]);
                assert_eq!(segmented.segment_records(), 4);
                assert_eq!(segmented.sealed_segments(), n / 4);
                assert_eq!(flat.sealed_segments(), 0);
                for i in 0..n {
                    assert_eq!(segmented.sketch(i), flat.sketch(i), "{fam:?} record {i}");
                }
                assert_eq!(segmented.byte_size(), flat.byte_size());
                // Lineage checks hold across segment geometries.
                assert!(segmented.is_prefix_of(&flat) && flat.is_prefix_of(&segmented));
            }
        }
    }

    #[test]
    fn snapshot_clone_shares_sealed_segments() {
        let mut rng = seeded(303);
        let records: Vec<SparseVector> = (0..21).map(|_| random_set(&mut rng, 500, 30)).collect();
        let sketcher = Sketcher::new(LshFamily::MinHash, 64, 3).with_segment_records(8);
        let set = sketcher.sketch_all(&records);
        assert_eq!(set.sealed_segments(), 2);
        // The clone copies only the tail (5 records) plus two pointers…
        let clone = set.clone();
        let expect = 5 * 64 * 8 + 2 * std::mem::size_of::<std::sync::Arc<[u64]>>();
        assert_eq!(set.snapshot_clone_bytes(), expect);
        assert!(set.snapshot_clone_bytes() < set.byte_size());
        // …and the shared segments let the lineage check run by pointer.
        assert!(set.is_prefix_of(&clone) && clone.is_prefix_of(&set));
        // Growing the clone seals new segments without touching the
        // original's — still a valid prefix, still pointer-shared.
        let mut grown = clone;
        sketcher.extend_batch(&records[..10], &mut grown);
        assert_eq!(grown.len(), 31);
        assert!(set.is_prefix_of(&grown));
        assert!(!grown.is_prefix_of(&set));
    }

    #[test]
    fn word_round_trip_restores_bit_identical_sets() {
        let mut rng = seeded(404);
        let records: Vec<SparseVector> = (0..13).map(|_| random_set(&mut rng, 400, 25)).collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let mut set = Sketcher::new(fam, 48, 9)
                .with_segment_records(4)
                .sketch_all(&records);
            Sketcher::new(fam, 48, 9).extend_batch(&records[..3], &mut set);
            let words: Vec<u64> = set.word_segments().flatten().copied().collect();
            assert_eq!(
                words.len(),
                set.len() * SketchSet::words_per_record(fam, 48)
            );
            // Same geometry: byte-identical restore, epoch carried over.
            let same = SketchSet::from_words(fam, 48, 9, 4, set.epoch(), set.len(), &words);
            assert_eq!(same.epoch(), set.epoch());
            assert_eq!(same.len(), set.len());
            assert!(same.is_prefix_of(&set) && set.is_prefix_of(&same));
            for i in 0..set.len() {
                assert_eq!(same.sketch(i), set.sketch(i), "{fam:?} record {i}");
            }
            // Restoring under a different segment geometry still yields
            // the same sketch bytes (lineage checks cross geometries).
            let regrouped = SketchSet::from_words(fam, 48, 9, 64, set.epoch(), set.len(), &words);
            assert!(regrouped.is_prefix_of(&set) && set.is_prefix_of(&regrouped));
        }
    }

    #[test]
    #[should_panic(expected = "snapshot words mismatch")]
    fn from_words_rejects_wrong_payload_length() {
        let words = vec![0u64; 7];
        let _ = SketchSet::from_words(LshFamily::MinHash, 16, 1, 4, 0, 1, &words);
    }

    #[test]
    fn diverged_tail_fails_prefix_check_across_geometries() {
        let a = SparseVector::from_set(vec![1, 2, 3]);
        let b = SparseVector::from_set(vec![9, 10, 11]);
        for (small_cap, big_cap) in [(2usize, 64usize), (64, 2)] {
            let small = Sketcher::new(LshFamily::MinHash, 32, 4)
                .with_segment_records(small_cap)
                .sketch_all(&[a.clone(), b.clone(), a.clone()]);
            let other = Sketcher::new(LshFamily::MinHash, 32, 4)
                .with_segment_records(big_cap)
                .sketch_all(&[a.clone(), b.clone(), b.clone(), a.clone()]);
            assert!(
                !small.is_prefix_of(&other),
                "caps ({small_cap}, {big_cap}): record 2 diverged"
            );
            assert!(!other.is_prefix_of(&small), "shrinking is not growth");
        }
    }
}
