//! Sketch generation and storage.
//!
//! Every record gets a fixed-length sketch: `n` 64-bit min-hashes
//! (MinHash family) or `n` sign bits packed into words (SimHash family).
//! Sketches for a whole dataset live in one flat buffer so pair evaluation
//! streams contiguous memory — the concatenated-sketch layout §2.4 credits
//! for BayesLSH's cache friendliness.

use plasma_data::hash::keyed_hash;
use plasma_data::vector::SparseVector;

use crate::family::LshFamily;

/// Generates sketches for one dataset.
#[derive(Debug, Clone)]
pub struct Sketcher {
    family: LshFamily,
    n_hashes: usize,
    seed: u64,
}

impl Sketcher {
    /// Creates a sketcher producing `n_hashes` hashes per record.
    pub fn new(family: LshFamily, n_hashes: usize, seed: u64) -> Self {
        assert!(n_hashes > 0, "sketches need at least one hash");
        Self {
            family,
            n_hashes,
            seed,
        }
    }

    /// Number of hashes per sketch.
    pub fn n_hashes(&self) -> usize {
        self.n_hashes
    }

    /// The hash family.
    pub fn family(&self) -> LshFamily {
        self.family
    }

    /// Sketches every record. Runtime is `O(records · nnz · n_hashes)`.
    pub fn sketch_all(&self, records: &[SparseVector]) -> SketchSet {
        let mut set = SketchSet::with_capacity(self.family, self.n_hashes, records.len());
        for r in records {
            self.sketch_into(r, &mut set);
        }
        set
    }

    /// Appends one record's sketch to `set`.
    pub fn sketch_into(&self, record: &SparseVector, set: &mut SketchSet) {
        debug_assert_eq!(set.family, self.family);
        debug_assert_eq!(set.n_hashes, self.n_hashes);
        match self.family {
            LshFamily::MinHash => {
                for h in 0..self.n_hashes {
                    let key = self.seed ^ (h as u64).wrapping_mul(0xA24B_AED4_963E_E407);
                    let mut best = u64::MAX;
                    for &d in record.dims() {
                        let v = keyed_hash(key, d);
                        if v < best {
                            best = v;
                        }
                    }
                    set.data.push(best);
                }
            }
            LshFamily::SimHash => {
                let words = self.n_hashes.div_ceil(64);
                let mut packed = vec![0u64; words];
                // Sign of <record, plane_h> per bit.
                for h in 0..self.n_hashes {
                    let key = self.seed ^ (h as u64).wrapping_mul(0x9E6C_63D0_9759_27F1);
                    let mut dot = 0.0f64;
                    for (d, w) in record.iter() {
                        dot += w * gaussian_component(key, d);
                    }
                    if dot >= 0.0 {
                        packed[h / 64] |= 1u64 << (h % 64);
                    }
                }
                set.data.extend_from_slice(&packed);
            }
        }
        set.records += 1;
    }
}

impl Sketcher {
    /// Extends an existing sketch set to `new_n` hashes per record,
    /// recomputing only the added hashes. Because every hash position is
    /// keyed independently, the extended set's prefix is bit-identical to
    /// the original — so cached `(m, n)` pair memos remain valid and the
    /// knowledge cache can grow its resolution instead of rebuilding
    /// (§2.2.1's re-use across iterations, applied to sketches).
    pub fn extend_sketches(
        &self,
        records: &[SparseVector],
        existing: &SketchSet,
        new_n: usize,
    ) -> SketchSet {
        assert_eq!(existing.family, self.family);
        assert_eq!(existing.len(), records.len(), "record/sketch count mismatch");
        assert!(
            new_n >= existing.n_hashes,
            "extension cannot shrink a sketch ({new_n} < {})",
            existing.n_hashes
        );
        let old_n = existing.n_hashes;
        let extender = Sketcher::new(self.family, new_n, self.seed);
        let mut out = SketchSet::with_capacity(self.family, new_n, records.len());
        match self.family {
            LshFamily::MinHash => {
                for (i, r) in records.iter().enumerate() {
                    // Copy the old hashes, compute only the new tail.
                    out.data.extend_from_slice(existing.sketch(i));
                    for h in old_n..new_n {
                        let key =
                            extender.seed ^ (h as u64).wrapping_mul(0xA24B_AED4_963E_E407);
                        let mut best = u64::MAX;
                        for &d in r.dims() {
                            let v = keyed_hash(key, d);
                            if v < best {
                                best = v;
                            }
                        }
                        out.data.push(best);
                    }
                    out.records += 1;
                }
            }
            LshFamily::SimHash => {
                let new_words = new_n.div_ceil(64);
                for (i, r) in records.iter().enumerate() {
                    let mut packed = vec![0u64; new_words];
                    let old = existing.sketch(i);
                    packed[..old.len()].copy_from_slice(old);
                    for h in old_n..new_n {
                        let key =
                            extender.seed ^ (h as u64).wrapping_mul(0x9E6C_63D0_9759_27F1);
                        let mut dot = 0.0f64;
                        for (d, w) in r.iter() {
                            dot += w * gaussian_component(key, d);
                        }
                        if dot >= 0.0 {
                            packed[h / 64] |= 1u64 << (h % 64);
                        }
                    }
                    out.data.extend_from_slice(&packed);
                    out.records += 1;
                }
            }
        }
        out
    }
}

/// Pseudo-random standard-normal component of hyperplane `key` at dimension
/// `d`, derived from a hash so planes never need materializing.
#[inline]
fn gaussian_component(key: u64, d: u32) -> f64 {
    let h = keyed_hash(key, d);
    // Two 32-bit halves → Box–Muller.
    let u1 = (((h >> 32) as u32 as f64) + 1.0) / (u32::MAX as f64 + 2.0);
    let u2 = ((h as u32 as f64) + 0.5) / (u32::MAX as f64 + 1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Flat storage of all sketches for a dataset.
#[derive(Debug, Clone)]
pub struct SketchSet {
    family: LshFamily,
    n_hashes: usize,
    stride: usize,
    records: usize,
    data: Vec<u64>,
}

impl SketchSet {
    fn with_capacity(family: LshFamily, n_hashes: usize, records: usize) -> Self {
        let stride = match family {
            LshFamily::MinHash => n_hashes,
            LshFamily::SimHash => n_hashes.div_ceil(64),
        };
        Self {
            family,
            n_hashes,
            stride,
            records: 0,
            data: Vec::with_capacity(records * stride),
        }
    }

    /// Number of sketched records.
    pub fn len(&self) -> usize {
        self.records
    }

    /// True when no records have been sketched.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Hashes per record.
    pub fn n_hashes(&self) -> usize {
        self.n_hashes
    }

    /// The hash family.
    pub fn family(&self) -> LshFamily {
        self.family
    }

    /// Raw sketch words of record `i`.
    pub fn sketch(&self, i: usize) -> &[u64] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Counts matching hashes between records `i` and `j` among the first
    /// `n` hashes (`n ≤ n_hashes`).
    pub fn matches(&self, i: usize, j: usize, n: usize) -> u32 {
        debug_assert!(n <= self.n_hashes);
        let a = self.sketch(i);
        let b = self.sketch(j);
        match self.family {
            LshFamily::MinHash => {
                let mut m = 0u32;
                for k in 0..n {
                    if a[k] == b[k] {
                        m += 1;
                    }
                }
                m
            }
            LshFamily::SimHash => {
                let mut mismatches = 0u32;
                let full_words = n / 64;
                for w in 0..full_words {
                    mismatches += (a[w] ^ b[w]).count_ones();
                }
                let rem = n % 64;
                if rem > 0 {
                    let mask = (1u64 << rem) - 1;
                    mismatches += ((a[full_words] ^ b[full_words]) & mask).count_ones();
                }
                n as u32 - mismatches
            }
        }
    }

    /// Bytes consumed by the sketch buffer (reported by Fig. 2.9-style
    /// accounting).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }

    /// Min-hash value of record `i` at hash position `h` (MinHash only);
    /// used by banding-based candidate generation.
    pub fn minhash_value(&self, i: usize, h: usize) -> u64 {
        debug_assert_eq!(self.family, LshFamily::MinHash);
        self.sketch(i)[h]
    }

    /// `band_width` consecutive hashes starting at `band * band_width`,
    /// mixed into one u64 band key (both families).
    pub fn band_key(&self, i: usize, band: usize, band_width: usize) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        match self.family {
            LshFamily::MinHash => {
                for h in band * band_width..((band + 1) * band_width).min(self.n_hashes) {
                    acc = (acc ^ self.sketch(i)[h]).wrapping_mul(0x1000_0000_01b3);
                }
            }
            LshFamily::SimHash => {
                let sk = self.sketch(i);
                for h in band * band_width..((band + 1) * band_width).min(self.n_hashes) {
                    let bit = (sk[h / 64] >> (h % 64)) & 1;
                    acc = (acc ^ bit).wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::rng::seeded;
    use plasma_data::similarity::{cosine, jaccard};
    use rand::Rng;

    fn random_set(rng: &mut impl Rng, universe: u32, len: usize) -> SparseVector {
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(rng.gen_range(0..universe));
        }
        SparseVector::from_set(items)
    }

    #[test]
    fn minhash_match_rate_estimates_jaccard() {
        let mut rng = seeded(1);
        let a = random_set(&mut rng, 1000, 120);
        let b = {
            // Overlap: share a's first half.
            let mut items: Vec<u32> = a.dims()[..60].to_vec();
            items.extend((0..60).map(|_| rng.gen_range(1000..2000)));
            SparseVector::from_set(items)
        };
        let truth = jaccard(&a, &b);
        let sk = Sketcher::new(LshFamily::MinHash, 512, 7).sketch_all(&[a, b]);
        let m = sk.matches(0, 1, 512) as f64 / 512.0;
        assert!(
            (m - truth).abs() < 0.07,
            "minhash rate {m} vs jaccard {truth}"
        );
    }

    #[test]
    fn simhash_match_rate_estimates_cosine() {
        let a = SparseVector::from_dense(&[1.0, 2.0, 3.0, 0.5, -1.0]);
        let b = SparseVector::from_dense(&[1.1, 1.9, 2.7, 0.7, -0.4]);
        let truth = cosine(&a, &b);
        let sk = Sketcher::new(LshFamily::SimHash, 2048, 3).sketch_all(&[a, b]);
        let rate = sk.matches(0, 1, 2048) as f64 / 2048.0;
        let est = LshFamily::SimHash.similarity_from_match_rate(rate);
        assert!(
            (est - truth).abs() < 0.08,
            "simhash estimate {est} vs cosine {truth}"
        );
    }

    #[test]
    fn identical_records_match_everywhere() {
        let v = SparseVector::from_dense(&[0.3, -2.0, 1.0]);
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let sk = Sketcher::new(fam, 96, 5).sketch_all(&[v.clone(), v.clone()]);
            assert_eq!(sk.matches(0, 1, 96), 96);
        }
    }

    #[test]
    fn prefix_matches_consistent() {
        let mut rng = seeded(2);
        let a = random_set(&mut rng, 500, 40);
        let b = random_set(&mut rng, 500, 40);
        let sk = Sketcher::new(LshFamily::SimHash, 256, 9).sketch_all(&[a, b]);
        let mut prev = 0;
        for n in [32, 64, 100, 200, 256] {
            let m = sk.matches(0, 1, n);
            assert!(m >= prev, "match count must be monotone in prefix length");
            assert!(m <= n as u32);
            prev = m;
        }
    }

    #[test]
    fn band_keys_agree_for_identical_sketches() {
        let v = SparseVector::from_set(vec![1, 5, 9]);
        let sk = Sketcher::new(LshFamily::MinHash, 64, 11).sketch_all(&[v.clone(), v]);
        for band in 0..8 {
            assert_eq!(sk.band_key(0, band, 8), sk.band_key(1, band, 8));
        }
    }

    #[test]
    fn extension_preserves_prefix_and_matches_fresh() {
        let mut rng = seeded(31);
        let records: Vec<SparseVector> = (0..8)
            .map(|_| random_set(&mut rng, 800, 60))
            .collect();
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let small = Sketcher::new(fam, 64, 9).sketch_all(&records);
            let extended = Sketcher::new(fam, 64, 9).extend_sketches(&records, &small, 192);
            let fresh = Sketcher::new(fam, 192, 9).sketch_all(&records);
            assert_eq!(extended.n_hashes(), 192);
            for i in 0..records.len() {
                for j in (i + 1)..records.len() {
                    // Prefix identical to the small sketches…
                    assert_eq!(
                        extended.matches(i, j, 64),
                        small.matches(i, j, 64),
                        "{fam:?} prefix mismatch"
                    );
                    // …and the whole thing identical to a fresh sketch.
                    assert_eq!(
                        extended.matches(i, j, 192),
                        fresh.matches(i, j, 192),
                        "{fam:?} full mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn extension_to_same_size_is_identity() {
        let v = SparseVector::from_set(vec![1, 2, 3, 4, 5]);
        let records = vec![v.clone(), v];
        let sk = Sketcher::new(LshFamily::MinHash, 32, 2).sketch_all(&records);
        let ext = Sketcher::new(LshFamily::MinHash, 32, 2).extend_sketches(&records, &sk, 32);
        assert_eq!(ext.sketch(0), sk.sketch(0));
    }

    #[test]
    fn byte_size_accounts_storage() {
        let v = SparseVector::from_set(vec![1, 2]);
        let sk = Sketcher::new(LshFamily::MinHash, 16, 1).sketch_all(&[v.clone(), v]);
        assert_eq!(sk.byte_size(), 2 * 16 * 8);
        let v2 = SparseVector::from_dense(&[1.0]);
        let sk2 = Sketcher::new(LshFamily::SimHash, 128, 1).sketch_all(&[v2]);
        assert_eq!(sk2.byte_size(), 2 * 8);
    }
}
