//! Differential suite for the sharded banded join: every
//! `(parallelism × shard-policy × band-count)` configuration must return
//! **exactly** the sequential reference — the same pair set, in the same
//! canonical (sorted) order, with zero duplicates — on random, skewed,
//! and adversarial inputs. This is the safety net under every future
//! candidate-path refactor: if a sharding change ever reorders, drops, or
//! duplicates a candidate, one of these properties fails.

use proptest::prelude::*;
use rand::Rng;

use plasma_data::rng::seeded;
use plasma_data::vector::SparseVector;
use plasma_data::zipf::Zipf;
use plasma_lsh::candidates::{
    banded_sequential, banded_shard_stats, banded_with_policy, ShardPolicy,
};
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::{SketchSet, Sketcher};

/// The policy grid every differential check sweeps: the default, sharding
/// off, an aggressive splitter (every bucket split-eligible, 7-pair
/// shards), and a maximal fan-out (1 pair per shard).
fn policies() -> [ShardPolicy; 4] {
    [
        ShardPolicy::default(),
        ShardPolicy::never_split(),
        ShardPolicy::new(2, 7),
        ShardPolicy::new(2, 1),
    ]
}

/// Asserts the canonical-output contract on `reference`, then that every
/// `(parallelism × policy)` configuration reproduces it exactly.
fn assert_all_configs_match_reference(
    sketches: &SketchSet,
    bands: usize,
    width: usize,
    label: &str,
) {
    let reference = banded_sequential(sketches, bands, width);
    // The reference itself is sorted, unique, i < j, in range.
    for w in reference.windows(2) {
        assert!(w[0] < w[1], "{label}: reference not sorted-unique");
    }
    for &(i, j) in &reference {
        assert!(i < j, "{label}: pair order");
        assert!((j as usize) < sketches.len(), "{label}: pair range");
    }
    for policy in policies() {
        // Pinned sequential: any policy routes to the reference path.
        assert_eq!(
            banded_with_policy(sketches, bands, width, Some(1), policy),
            reference,
            "{label}: sequential with {policy:?} diverged"
        );
        for threads in [2usize, 3, 4, 8] {
            assert_eq!(
                banded_with_policy(sketches, bands, width, Some(threads), policy),
                reference,
                "{label}: threads={threads} {policy:?} diverged"
            );
        }
    }
}

/// A Zipf-clustered corpus: each record is an exact copy of its cluster's
/// base set, cluster drawn from `Zipf(s)` — so every band has one bucket
/// per cluster and the rank-0 bucket's share grows with `s`. At `s = 2.0`
/// the head cluster holds well over half of all records: the hot-bucket
/// shape that used to serialize the join.
fn zipf_clustered(n: usize, clusters: usize, s: f64, seed: u64) -> Vec<SparseVector> {
    let zipf = Zipf::new(clusters, s);
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let c = zipf.sample(&mut rng) as u32;
            // Cluster supports are disjoint (60-wide strides, 45 items).
            SparseVector::from_set((c * 60..c * 60 + 45).collect())
        })
        .collect()
}

fn minhash_sketches(records: &[SparseVector]) -> SketchSet {
    Sketcher::new(LshFamily::MinHash, 64, 11).sketch_all(records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random sparse-set corpora across the full grid. A small universe
    /// (0..120) forces genuine collisions; band counts beyond
    /// `n_hashes / width` produce degenerate constant-key bands — every
    /// record in one bucket, the worst skew possible — on purpose.
    #[test]
    fn random_corpora_match_reference(
        records in proptest::collection::vec(
            proptest::collection::vec(0u32..120, 1..40).prop_map(SparseVector::from_set),
            0..60,
        ),
        bands in 1usize..16,
        width in 1usize..8,
    ) {
        let sk = minhash_sketches(&records);
        assert_all_configs_match_reference(&sk, bands, width, "random corpus");
    }

    /// Zipf-keyed corpora over the skew ladder: the heavier the tail, the
    /// hotter the head bucket; output must not care.
    #[test]
    fn zipf_skewed_corpora_match_reference(
        seed in 0u64..500,
        n in 40usize..140,
    ) {
        for s in [0.8f64, 1.2, 2.0] {
            let records = zipf_clustered(n, 30, s, seed);
            let sk = minhash_sketches(&records);
            assert_all_configs_match_reference(&sk, 8, 8, &format!("zipf s={s}"));
        }
    }

    /// Clustered near-duplicates (heavy cross-band duplication) at random
    /// cluster granularity.
    #[test]
    fn near_duplicate_clusters_match_reference(
        seed in 0u64..500,
        cluster_size in 2usize..12,
    ) {
        let mut rng = seeded(seed);
        let records: Vec<SparseVector> = (0..60)
            .map(|i| {
                let c = (i / cluster_size) as u32;
                let mut items: Vec<u32> = (c * 50..c * 50 + 40).collect();
                // A little per-record noise so clusters are near-, not
                // exact-duplicates: some bands match, some don't.
                items.push(2000 + rng.gen_range(0..6u32));
                SparseVector::from_set(items)
            })
            .collect();
        let sk = minhash_sketches(&records);
        assert_all_configs_match_reference(&sk, 16, 4, "near-duplicate clusters");
    }
}

/// The pathological extreme: every record identical, so every band is one
/// bucket holding 100% of records. Pair-count arithmetic and triangular
/// decoding must hold up, and the output is exactly all `n·(n−1)/2`
/// pairs.
#[test]
fn all_identical_records_fan_out_without_overflow() {
    let n = 150usize;
    let records: Vec<SparseVector> = (0..n)
        .map(|_| SparseVector::from_set((0..50).collect()))
        .collect();
    let sk = minhash_sketches(&records);
    let reference = banded_sequential(&sk, 8, 8);
    assert_eq!(reference.len(), n * (n - 1) / 2);
    assert_all_configs_match_reference(&sk, 8, 8, "all-identical");
    // The hot bucket is the whole dataset; a small pair budget must fan
    // it out across many shards, none over budget.
    let stats = banded_shard_stats(&sk, 8, 8, ShardPolicy::new(2, 64));
    assert_eq!(stats.hot_bucket_members, n as u64);
    assert_eq!(stats.hot_bucket_pairs, (n * (n - 1) / 2) as u64);
    assert!(stats.largest_shard_pairs <= 64);
    assert!(
        stats.shards >= 8 * stats.hot_bucket_pairs / 64,
        "one bucket per band must split: {stats:?}"
    );
}

/// The opposite extreme: all-distinct disjoint records — buckets are
/// (almost) all singletons, candidates (almost) empty, and nothing
/// panics on the near-empty shard plan.
#[test]
fn all_distinct_records_yield_no_hot_bucket() {
    let records: Vec<SparseVector> = (0..80u32)
        .map(|i| SparseVector::from_set((i * 100..i * 100 + 50).collect()))
        .collect();
    let sk = minhash_sketches(&records);
    assert_all_configs_match_reference(&sk, 8, 8, "all-distinct");
    let reference = banded_sequential(&sk, 8, 8);
    assert!(reference.len() <= 4, "disjoint sets should rarely collide");
}

/// Zipf(2.0) genuinely produces the ">50% of records in one bucket"
/// shape the sharding exists for — pinned via the stats surface so the
/// skew-stress scenarios in this file are known to be stressing skew.
#[test]
fn zipf_two_puts_majority_in_the_hot_bucket() {
    let n = 400usize;
    let records = zipf_clustered(n, 40, 2.0, 13);
    let sk = minhash_sketches(&records);
    let stats = banded_shard_stats(&sk, 8, 8, ShardPolicy::default());
    assert!(
        stats.hot_bucket_members as f64 > n as f64 / 2.0,
        "rank-0 cluster should dominate: {} of {n}",
        stats.hot_bucket_members
    );
    assert_all_configs_match_reference(&sk, 8, 8, "zipf s=2.0 majority bucket");
}

/// Zero and one-record datasets: empty candidates on every path, no
/// allocation panics from capacity hints, empty shard plans.
#[test]
fn degenerate_datasets_are_empty_and_panic_free() {
    for n in [0usize, 1] {
        let records: Vec<SparseVector> = (0..n)
            .map(|_| SparseVector::from_set(vec![7, 9, 11]))
            .collect();
        let sk = minhash_sketches(&records);
        for bands in [0usize, 1, 8] {
            assert!(banded_sequential(&sk, bands, 8).is_empty());
            for policy in policies() {
                for threads in [1usize, 2, 8] {
                    assert!(
                        banded_with_policy(&sk, bands, 8, Some(threads), policy).is_empty(),
                        "n={n} bands={bands} threads={threads}"
                    );
                }
            }
            let stats = banded_shard_stats(&sk, bands, 8, ShardPolicy::default());
            assert_eq!((stats.shards, stats.total_pairs), (0, 0));
        }
    }
}

/// Zero bands: no buckets, no candidates, at any parallelism.
#[test]
fn zero_bands_yield_empty_candidates() {
    let records: Vec<SparseVector> = (0..20)
        .map(|_| SparseVector::from_set((0..30).collect()))
        .collect();
    let sk = minhash_sketches(&records);
    for threads in [1usize, 4] {
        assert!(banded_with_policy(&sk, 0, 8, Some(threads), ShardPolicy::default()).is_empty());
    }
}

/// SimHash sketches go through the same banded join; the differential
/// guarantee is family-independent.
#[test]
fn simhash_banding_matches_reference() {
    let mut rng = seeded(29);
    let records: Vec<SparseVector> = (0..50)
        .map(|i| {
            let base = (i / 5) as f64;
            SparseVector::from_dense(&[
                base + rng.gen_range(-0.1..0.1),
                1.0 + rng.gen_range(-0.1..0.1),
                base * 0.5,
                rng.gen_range(-0.2..0.2),
            ])
        })
        .collect();
    let sk = Sketcher::new(LshFamily::SimHash, 64, 17).sketch_all(&records);
    assert_all_configs_match_reference(&sk, 8, 8, "simhash");
}
