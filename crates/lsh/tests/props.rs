//! Property tests for LSH sketches and BayesLSH inference.

use proptest::prelude::*;

use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::{BayesLsh, BayesParams, PairDecision};
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::Sketcher;

fn item_set() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec(0u32..400, 1..50).prop_map(SparseVector::from_set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn posterior_is_normalized(m in 0u32..256, extra in 0u32..256) {
        let n = m + extra.max(1);
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let e = BayesLsh::new(fam, BayesParams::default());
            let p = e.posterior(m, n);
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "{fam:?} ({m},{n}): {total}");
            prop_assert!(p.iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn tail_probability_monotone_in_threshold(m in 0u32..128, extra in 1u32..128) {
        let n = m + extra;
        let e = BayesLsh::new(LshFamily::MinHash, BayesParams::default());
        let mut prev = 1.0f64;
        for k in 0..10 {
            let t = k as f64 / 10.0;
            let p = e.prob_at_least(m, n, t);
            prop_assert!(p <= prev + 1e-9, "tail not monotone at t={t}");
            prev = p;
        }
    }

    #[test]
    fn more_matches_never_lower_tail_probability(n in 8u32..128, t in 0.1f64..0.95) {
        let e = BayesLsh::new(LshFamily::MinHash, BayesParams::default());
        let mut prev = 0.0f64;
        for m in 0..=n {
            let p = e.prob_at_least(m, n, t);
            prop_assert!(p >= prev - 1e-9, "tail not monotone in m at m={m}");
            prev = p;
        }
    }

    #[test]
    fn sketch_matches_bounded_by_prefix(a in item_set(), b in item_set(), n in 1usize..128) {
        let sk = Sketcher::new(LshFamily::MinHash, 128, 7).sketch_all(&[a, b]);
        let m = sk.matches(0, 1, n.min(128));
        prop_assert!(m as usize <= n.min(128));
    }

    #[test]
    fn identical_vectors_never_pruned(a in item_set()) {
        let sk = Sketcher::new(LshFamily::MinHash, 128, 3).sketch_all(&[a.clone(), a]);
        let e = BayesLsh::new(LshFamily::MinHash, BayesParams::default());
        let r = e.evaluate_pair(&sk, 0, 1, 0.9);
        prop_assert!(r.decision != PairDecision::Pruned);
        prop_assert!(r.map_similarity > 0.9);
    }

    #[test]
    fn probe_table_agrees_with_direct_engine(
        a in item_set(),
        b in item_set(),
        t in 0.1f64..0.9
    ) {
        let sk = Sketcher::new(LshFamily::MinHash, 96, 5).sketch_all(&[a, b]);
        let e = BayesLsh::new(LshFamily::MinHash, BayesParams::default());
        let direct = e.evaluate_pair(&sk, 0, 1, t);
        let mut table = e.probe_table(t);
        let tabled = table.evaluate_pair(&sk, 0, 1);
        prop_assert_eq!(direct.decision, tabled.decision);
        prop_assert_eq!(direct.matches, tabled.matches);
        prop_assert_eq!(direct.hashes, tabled.hashes);
    }

    #[test]
    fn map_estimate_within_domain(m in 0u32..96, extra in 1u32..96) {
        let n = m + extra;
        for fam in [LshFamily::MinHash, LshFamily::SimHash] {
            let e = BayesLsh::new(fam, BayesParams::default());
            let post = e.posterior(m, n);
            let (map, mean, var) = e.summarize(&post);
            prop_assert!(map >= fam.domain_min() - 1e-9 && map <= 1.0 + 1e-9);
            prop_assert!(mean >= fam.domain_min() - 1e-9 && mean <= 1.0 + 1e-9);
            prop_assert!(var >= 0.0);
        }
    }
}
