//! Differential suite for the segmented sketch store: every (segment
//! capacity × batch-split schedule × parallelism) configuration must
//! hold exactly the same sketch words, band keys, and banded candidates
//! as the flat-store reference (a capacity so large nothing ever seals).
//! Segment geometry is storage layout, never semantics — if a segmented
//! accessor ever reads the wrong word at a segment boundary, one of
//! these properties fails.

use proptest::prelude::*;
use rand::Rng;

use plasma_data::rng::seeded;
use plasma_data::vector::SparseVector;
use plasma_lsh::candidates::banded_sequential;
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::{SketchSet, Sketcher};

/// A segment capacity big enough that no test corpus ever seals a
/// segment: the single mutable tail *is* the old flat store.
const FLAT: usize = 1 << 20;

fn random_records(n: usize, seed: u64) -> Vec<SparseVector> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..40usize);
            SparseVector::from_set((0..len).map(|_| rng.gen_range(0..150u32)).collect())
        })
        .collect()
}

/// Asserts two stores are observationally identical: per-record sketch
/// words, band keys at several join shapes, banded candidates, and
/// logical byte size. Layout (segment count) is allowed to differ —
/// nothing else is.
fn assert_stores_identical(seg: &SketchSet, flat: &SketchSet, label: &str) {
    assert_eq!(seg.len(), flat.len(), "{label}: record count");
    for i in 0..seg.len() {
        assert_eq!(seg.sketch(i), flat.sketch(i), "{label}: record {i}");
    }
    let mut a = vec![0u64; seg.len()];
    let mut b = vec![0u64; seg.len()];
    for (bands, width) in [(8usize, 8usize), (16, 4), (3, 5)] {
        for band in 0..bands {
            seg.band_keys_into(band, width, 0, &mut a);
            flat.band_keys_into(band, width, 0, &mut b);
            assert_eq!(a, b, "{label}: band {band} of {bands}×{width}");
        }
        assert_eq!(
            banded_sequential(seg, bands, width),
            banded_sequential(flat, bands, width),
            "{label}: candidates at {bands}×{width}"
        );
    }
    assert_eq!(seg.byte_size(), flat.byte_size(), "{label}: byte size");
}

/// Builds a sketch set over `records` in installments: `sketch_all` for
/// the first batch, `extend_batch` for each later one. `boundaries` are
/// ascending cut points in `(0, n)`.
fn build_in_batches(
    sketcher: &Sketcher,
    records: &[SparseVector],
    boundaries: &[usize],
) -> SketchSet {
    let first = boundaries.first().copied().unwrap_or(records.len());
    let mut set = sketcher.sketch_all(&records[..first]);
    let mut lo = first;
    for &hi in &boundaries[1.min(boundaries.len())..] {
        sketcher.extend_batch(&records[lo..hi], &mut set);
        lo = hi;
    }
    if lo < records.len() {
        sketcher.extend_batch(&records[lo..], &mut set);
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full grid: random corpora built under every combination of
    /// small segment capacity, random batch-split schedule, and worker
    /// count must match a one-shot flat-store build exactly.
    #[test]
    fn segmented_batched_builds_match_flat_reference(
        seed in 0u64..1000,
        n in 1usize..70,
        seg_records in 1usize..16,
        parallelism in 1usize..5,
        cuts in proptest::collection::vec(1usize..70, 0..5),
    ) {
        // Normalize the random cut list into ascending in-range
        // boundaries (duplicates make empty batches — a legal no-op).
        let mut boundaries: Vec<usize> = cuts.into_iter().filter(|&c| c < n).collect();
        boundaries.sort_unstable();
        let records = random_records(n, seed);
        for family in [LshFamily::MinHash, LshFamily::SimHash] {
            let flat = Sketcher::new(family, 64, 11)
                .with_segment_records(FLAT)
                .sketch_all(&records);
            let sketcher = Sketcher::new(family, 64, 11)
                .with_segment_records(seg_records)
                .with_parallelism(Some(parallelism));
            let seg = build_in_batches(&sketcher, &records, &boundaries);
            let label = format!(
                "{family:?} n={n} seg={seg_records} par={parallelism} cuts={boundaries:?}"
            );
            assert_stores_identical(&seg, &flat, &label);
            // Lineage works across differing geometries in both
            // directions: each store is a prefix of the other.
            prop_assert!(seg.is_prefix_of(&flat), "{}", label);
            prop_assert!(flat.is_prefix_of(&seg), "{}", label);
        }
    }
}

/// The two boundary shapes that segment arithmetic can get wrong: a
/// corpus that fills its last segment *exactly* (empty tail), and one
/// record past that (1-record tail). Both must match the flat store and
/// report the expected sealed-segment count.
#[test]
fn exactly_full_and_one_record_tail_edges() {
    for seg_records in [1usize, 2, 4, 8] {
        for n in [
            seg_records,
            3 * seg_records,
            seg_records + 1,
            3 * seg_records + 1,
        ] {
            let records = random_records(n, 7 + n as u64);
            let flat = Sketcher::new(LshFamily::MinHash, 64, 5)
                .with_segment_records(FLAT)
                .sketch_all(&records);
            let sketcher =
                Sketcher::new(LshFamily::MinHash, 64, 5).with_segment_records(seg_records);
            let seg = sketcher.sketch_all(&records);
            assert_eq!(
                seg.sealed_segments(),
                n / seg_records,
                "n={n} seg={seg_records}: eager sealing invariant"
            );
            assert_stores_identical(&seg, &flat, &format!("edge n={n} seg={seg_records}"));

            // Growing off either edge stays identical to the flat build
            // of the grown corpus.
            let more = random_records(seg_records + 1, 1000 + n as u64);
            let mut grown = seg.clone();
            sketcher.extend_batch(&more, &mut grown);
            let mut all = records.clone();
            all.extend(more);
            let flat_grown = Sketcher::new(LshFamily::MinHash, 64, 5)
                .with_segment_records(FLAT)
                .sketch_all(&all);
            assert_stores_identical(
                &grown,
                &flat_grown,
                &format!("grown n={n} seg={seg_records}"),
            );
            assert!(seg.is_prefix_of(&grown), "n={n} seg={seg_records}: lineage");
        }
    }
}

/// Snapshot-clone cost is O(segments + tail), not O(corpus): with a
/// fixed segment capacity, a 10× larger corpus costs ~10× more *pointer*
/// bytes but the same tail bound — far below the corpus bytes a flat
/// store would copy.
#[test]
fn snapshot_clone_bytes_track_segments_not_corpus() {
    let seg_records = 8usize;
    let sketcher = Sketcher::new(LshFamily::MinHash, 64, 3).with_segment_records(seg_records);
    let small = sketcher.sketch_all(&random_records(40, 1));
    let large = sketcher.sketch_all(&random_records(400, 2));
    // Corpus bytes grew 10×…
    assert_eq!(large.byte_size(), 10 * small.byte_size());
    // …but clone cost is pointers-per-segment plus a bounded tail.
    let arc_bytes = std::mem::size_of::<std::sync::Arc<[u64]>>();
    assert_eq!(small.snapshot_clone_bytes(), (40 / seg_records) * arc_bytes);
    assert_eq!(
        large.snapshot_clone_bytes(),
        (400 / seg_records) * arc_bytes
    );
    assert!(
        large.snapshot_clone_bytes() < large.byte_size() / 50,
        "clone cost {} must be far below corpus bytes {}",
        large.snapshot_clone_bytes(),
        large.byte_size()
    );
}
