//! Quadratic Bézier smoothing (§5.1.1's "famous Bézier curve" used to
//! smoothly bend lines through left / assistant / right points).

/// A 2-D point.
pub type Point = (f64, f64);

/// Evaluates the quadratic Bézier through control points `p0, p1, p2`
/// at parameter `t ∈ [0, 1]`.
pub fn quadratic(p0: Point, p1: Point, p2: Point, t: f64) -> Point {
    let u = 1.0 - t;
    (
        u * u * p0.0 + 2.0 * u * t * p1.0 + t * t * p2.0,
        u * u * p0.1 + 2.0 * u * t * p1.1 + t * t * p2.1,
    )
}

/// Control point that makes the quadratic Bézier *pass through* `mid` at
/// `t = 0.5` (the assistant-coordinate point is an interpolation target,
/// not a control handle): `c = 2·mid − (p0 + p2)/2`.
pub fn control_for_midpoint(p0: Point, mid: Point, p2: Point) -> Point {
    (
        2.0 * mid.0 - (p0.0 + p2.0) / 2.0,
        2.0 * mid.1 - (p0.1 + p2.1) / 2.0,
    )
}

/// Samples the curve through `(p0, mid, p2)` at `steps + 1` points.
pub fn sample_through(p0: Point, mid: Point, p2: Point, steps: usize) -> Vec<Point> {
    let c = control_for_midpoint(p0, mid, p2);
    (0..=steps)
        .map(|k| quadratic(p0, c, p2, k as f64 / steps.max(1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_exact() {
        let pts = sample_through((0.0, 0.0), (0.5, 1.0), (1.0, 0.0), 10);
        assert_eq!(pts[0], (0.0, 0.0));
        assert_eq!(pts[10], (1.0, 0.0));
    }

    #[test]
    fn passes_through_midpoint() {
        let mid = (0.5, 0.8);
        let pts = sample_through((0.0, 0.2), mid, (1.0, 0.4), 10);
        let at_half = pts[5];
        assert!((at_half.0 - mid.0).abs() < 1e-9);
        assert!((at_half.1 - mid.1).abs() < 1e-9);
    }

    #[test]
    fn straight_line_midpoint_yields_straight_curve() {
        let p0 = (0.0, 0.0);
        let p2 = (1.0, 1.0);
        let mid = (0.5, 0.5);
        for p in sample_through(p0, mid, p2, 8) {
            assert!((p.1 - p.0).abs() < 1e-9, "point {p:?} off the line");
        }
    }
}
