//! Crossing counting between adjacent coordinates (Algorithm 8).
//!
//! A crossing is an *order change*: items `i, j` cross between coordinates
//! `x` and `y` iff `σx(i) < σx(j)` but `σy(i) > σy(j)`. Counting order
//! changes is inversion counting, done here in `O(n log n)` with a Fenwick
//! tree (the paper uses an augmented red–black tree; same bound). The
//! naive `O(n²)` counter is kept as a differential-testing oracle and as
//! the baseline the `crossings` bench ablates against.

/// Fenwick tree (binary indexed tree) over `n` counters.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Adds 1 at position `i` (0-based).
    fn add(&mut self, i: usize) {
        let mut k = i + 1;
        while k < self.tree.len() {
            self.tree[k] += 1;
            k += k & k.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based); 0 when `i` underflows.
    fn prefix(&self, i: usize) -> u64 {
        let mut k = i + 1;
        let mut s = 0;
        while k > 0 {
            s += self.tree[k];
            k -= k & k.wrapping_neg();
        }
        s
    }
}

/// Ranks of `values` (0 = smallest), ties broken by index so every item
/// has a distinct rank.
pub fn ranks(values: &[f64]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        values[a as usize]
            .partial_cmp(&values[b as usize])
            .expect("finite values")
            .then(a.cmp(&b))
    });
    let mut out = vec![0u32; values.len()];
    for (r, &i) in idx.iter().enumerate() {
        out[i as usize] = r as u32;
    }
    out
}

/// Counts crossings between two coordinates given per-item values,
/// `O(n log n)`.
pub fn count_crossings(x_values: &[f64], y_values: &[f64]) -> u64 {
    assert_eq!(x_values.len(), y_values.len());
    let rx = ranks(x_values);
    let ry = ranks(y_values);
    count_crossings_ranked(&rx, &ry)
}

/// Counts crossings from precomputed distinct ranks.
pub fn count_crossings_ranked(rx: &[u32], ry: &[u32]) -> u64 {
    let n = rx.len();
    // Order items by x-rank; count inversions in the induced y-rank
    // sequence.
    let mut by_x: Vec<u32> = (0..n as u32).collect();
    by_x.sort_unstable_by_key(|&i| rx[i as usize]);
    let mut fen = Fenwick::new(n);
    let mut crossings = 0u64;
    for (seen, &i) in by_x.iter().enumerate() {
        let yr = ry[i as usize] as usize;
        // Items already inserted with y-rank greater than yr.
        let le = fen.prefix(yr);
        crossings += seen as u64 - le;
        fen.add(yr);
    }
    crossings
}

/// Naive `O(n²)` oracle.
pub fn count_crossings_naive(x_values: &[f64], y_values: &[f64]) -> u64 {
    let rx = ranks(x_values);
    let ry = ranks(y_values);
    let n = rx.len();
    let mut c = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = rx[i].cmp(&rx[j]);
            let dy = ry[i].cmp(&ry[j]);
            if dx != dy {
                c += 1;
            }
        }
    }
    c
}

/// Pairwise crossing counts between all coordinate pairs of a row-major
/// table: `matrix[a][b]` = crossings between dimensions `a` and `b`.
pub fn crossing_matrix(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let d = rows[0].len();
    // Precompute ranks per dimension.
    let rank_per_dim: Vec<Vec<u32>> = (0..d)
        .map(|k| {
            let col: Vec<f64> = rows.iter().map(|r| r[k]).collect();
            ranks(&col)
        })
        .collect();
    let mut m = vec![vec![0u64; d]; d];
    for a in 0..d {
        for b in (a + 1)..d {
            let c = count_crossings_ranked(&rank_per_dim[a], &rank_per_dim[b]);
            m[a][b] = c;
            m[b][a] = c;
        }
    }
    m
}

/// Total crossings realized by a dimension ordering.
pub fn total_crossings(matrix: &[Vec<u64>], order: &[usize]) -> u64 {
    order.windows(2).map(|w| matrix[w[0]][w[1]]).sum()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_orders_have_no_crossings() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(count_crossings(&v, &v), 0);
    }

    #[test]
    fn reversed_orders_cross_maximally() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![4.0, 3.0, 2.0, 1.0];
        assert_eq!(count_crossings(&x, &y), 6); // C(4,2)
    }

    #[test]
    fn single_swap_counts_one() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![2.0, 1.0, 3.0];
        assert_eq!(count_crossings(&x, &y), 1);
    }

    #[test]
    fn fast_matches_naive_on_random_data() {
        let mut rng = plasma_data::rng::seeded(5);
        for _ in 0..10 {
            let n = rng.gen_range(5..200);
            let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            assert_eq!(count_crossings(&x, &y), count_crossings_naive(&x, &y));
        }
    }

    #[test]
    fn ties_are_deterministic() {
        let x = vec![1.0, 1.0, 1.0];
        let y = vec![2.0, 2.0, 2.0];
        // Tie-broken by index identically on both axes → no crossings.
        assert_eq!(count_crossings(&x, &y), 0);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let rows = vec![
            vec![1.0, 4.0, 2.0],
            vec![2.0, 3.0, 9.0],
            vec![3.0, 2.0, 1.0],
            vec![4.0, 1.0, 5.0],
        ];
        let m = crossing_matrix(&rows);
        for a in 0..3 {
            assert_eq!(m[a][a], 0);
            for b in 0..3 {
                assert_eq!(m[a][b], m[b][a]);
            }
        }
        // Dimensions 0 and 1 are exactly reversed: C(4,2) = 6.
        assert_eq!(m[0][1], 6);
    }

    #[test]
    fn total_crossings_sums_adjacent() {
        let rows = vec![
            vec![1.0, 4.0, 2.0],
            vec![2.0, 3.0, 9.0],
            vec![3.0, 2.0, 1.0],
            vec![4.0, 1.0, 5.0],
        ];
        let m = crossing_matrix(&rows);
        let t = total_crossings(&m, &[0, 1, 2]);
        assert_eq!(t, m[0][1] + m[1][2]);
    }
}
