//! The 2-dimensional energy-reduction model (§5.1.1, Algorithm 7).
//!
//! Between each pair of adjacent coordinates, an assistant coordinate
//! holds one point `z_i` per line. Three energies shape the layout:
//!
//! * elastic `EE(i) = (z_i − (x_i+y_i)/2)²` — keeps lines straight,
//! * attraction `EA(i) = (z_i − ĉ_p)²` — pulls a line toward its cluster's
//!   (pseudo-)center,
//! * repelling `ER(i) = (z_i − ĉ_{p−1})² + (z_i − ĉ_{p+1})²` — pushes
//!   lines away from adjacent clusters' centers (boundary clusters skip
//!   it; Lemma 1/2 give the coordinate-wise minimizers; Lemma 3 bounds the
//!   pseudo-center drift).
//!
//! A size-weighted repelling variant (Corollaries 1/2) reserves more room
//! for bigger clusters.

/// Energy weights; the paper's default is `α = β = γ = 1/3`.
#[derive(Debug, Clone, Copy)]
pub struct EnergyConfig {
    /// Elastic weight α.
    pub alpha: f64,
    /// Attraction weight β.
    pub beta: f64,
    /// Repelling weight γ.
    pub gamma: f64,
    /// Relative energy-decrease convergence threshold ε.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Use the size-weighted repelling energy `E*_R`.
    pub size_weighted: bool,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0 / 3.0,
            beta: 1.0 / 3.0,
            gamma: 1.0 / 3.0,
            epsilon: 1e-4,
            max_iters: 500,
            size_weighted: false,
        }
    }
}

/// Result of one assistant-coordinate optimization.
#[derive(Debug, Clone)]
pub struct EnergyResult {
    /// Final `z_i` position per line on the assistant coordinate.
    pub z: Vec<f64>,
    /// Final pseudo-center per cluster (ordered cluster index space).
    pub centers: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final total energy.
    pub energy: f64,
}

/// The energy model for one adjacent coordinate pair.
pub struct EnergyModel {
    cfg: EnergyConfig,
}

impl EnergyModel {
    /// Creates a model with the given weights.
    pub fn new(cfg: EnergyConfig) -> Self {
        Self { cfg }
    }

    /// Runs Algorithm 7 for lines with values `x` (left coordinate) and
    /// `y` (right coordinate), both normalized to `[0, 1]`, and cluster
    /// labels.
    pub fn optimize(&self, x: &[f64], y: &[f64], clusters: &[u32]) -> EnergyResult {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), clusters.len());
        let n = x.len();
        let cfg = &self.cfg;
        let k = clusters.iter().copied().max().map_or(0, |m| m as usize + 1);
        if n == 0 || k == 0 {
            return EnergyResult {
                z: Vec::new(),
                centers: Vec::new(),
                iterations: 0,
                energy: 0.0,
            };
        }

        // Midpoints are the straight-line initial state.
        let mid: Vec<f64> = x.iter().zip(y).map(|(a, b)| (a + b) / 2.0).collect();
        let mut z = mid.clone();

        // Rank clusters by initial center so "adjacent cluster" is
        // well-defined (§5.2.1 assumes clusters ordered by center).
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &c) in clusters.iter().enumerate() {
            sums[c as usize] += mid[i];
            counts[c as usize] += 1;
        }
        let mut cluster_order: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
        cluster_order.sort_by(|&a, &b| {
            (sums[a] / counts[a] as f64)
                .partial_cmp(&(sums[b] / counts[b] as f64))
                .expect("finite centers")
        });
        // rank[c] = position of cluster c in the ordered chain.
        let mut rank = vec![usize::MAX; k];
        for (r, &c) in cluster_order.iter().enumerate() {
            rank[c] = r;
        }
        let chain = cluster_order.len();
        let sizes: Vec<f64> = cluster_order.iter().map(|&c| counts[c] as f64).collect();

        // Pseudo-centers indexed by chain rank; boundary sentinels at the
        // coordinate range limits (ĉ0 = min, ĉ_{n+1} = max).
        let mut centers: Vec<f64> = cluster_order
            .iter()
            .map(|&c| sums[c] / counts[c] as f64)
            .collect();
        let (range_lo, range_hi) = (0.0f64, 1.0f64);

        let mut e_old = self.total_energy(&z, &mid, clusters, &rank, &centers, &sizes);
        let mut iterations = 0usize;
        for _ in 0..cfg.max_iters {
            iterations += 1;
            // Lemma 1 / Corollary 1: update every z_i.
            for i in 0..n {
                let r = rank[clusters[i] as usize];
                let interior = r > 0 && r + 1 < chain;
                if interior && cfg.gamma > 0.0 {
                    if cfg.size_weighted {
                        let (wl, wr) = neighbor_weights(&sizes, r);
                        z[i] = (cfg.alpha * mid[i]
                            + cfg.beta * centers[r]
                            + cfg.gamma * wl * centers[r - 1]
                            + cfg.gamma * wr * centers[r + 1])
                            / (cfg.alpha + cfg.beta + cfg.gamma);
                    } else {
                        z[i] = (cfg.alpha * mid[i]
                            + cfg.beta * centers[r]
                            + cfg.gamma * centers[r - 1]
                            + cfg.gamma * centers[r + 1])
                            / (cfg.alpha + cfg.beta + 2.0 * cfg.gamma);
                    }
                } else {
                    // Boundary clusters: elastic + attraction only (the
                    // repelling term vanishes there, per the boundary-case
                    // energy E′ of §5.2.1). Degenerate all-zero weights
                    // leave the line at its midpoint.
                    let denom = cfg.alpha + cfg.beta;
                    z[i] = if denom > 0.0 {
                        (cfg.alpha * mid[i] + cfg.beta * centers[r]) / denom
                    } else {
                        mid[i]
                    };
                }
            }
            // Lemma 2 / Corollary 2: update pseudo-centers.
            let mut zsums = vec![0.0f64; chain];
            for (i, &c) in clusters.iter().enumerate() {
                zsums[rank[c as usize]] += z[i];
            }
            for r in 0..chain {
                let p_prime = if r <= 1 { 0.0 } else { 1.0 };
                let p_dprime = if r + 2 >= chain { 0.0 } else { 1.0 };
                let (wl, wr) = if cfg.size_weighted && chain > 1 {
                    neighbor_weights_centered(&sizes, r, chain)
                } else {
                    (1.0, 1.0)
                };
                let num = cfg.beta * zsums[r]
                    + cfg.gamma * p_prime * wl * zsums[r.saturating_sub(1)]
                    + cfg.gamma * p_dprime * wr * zsums[(r + 1).min(chain - 1)];
                let den = cfg.beta * sizes[r]
                    + cfg.gamma * p_prime * wl * sizes[r.saturating_sub(1)]
                    + cfg.gamma * p_dprime * wr * sizes[(r + 1).min(chain - 1)];
                if den > 0.0 {
                    centers[r] = (num / den).clamp(range_lo, range_hi);
                }
            }
            let e_new = self.total_energy(&z, &mid, clusters, &rank, &centers, &sizes);
            if e_old - e_new <= cfg.epsilon * e_old.max(1e-12) {
                e_old = e_new;
                break;
            }
            e_old = e_new;
        }

        EnergyResult {
            z,
            centers,
            iterations,
            energy: e_old,
        }
    }

    /// Total energy E′ of a configuration.
    fn total_energy(
        &self,
        z: &[f64],
        mid: &[f64],
        clusters: &[u32],
        rank: &[usize],
        centers: &[f64],
        sizes: &[f64],
    ) -> f64 {
        let cfg = &self.cfg;
        let chain = centers.len();
        let mut e = 0.0;
        for i in 0..z.len() {
            let r = rank[clusters[i] as usize];
            let ee = (z[i] - mid[i]).powi(2);
            let ea = (z[i] - centers[r]).powi(2);
            let mut er = 0.0;
            if r > 0 && r + 1 < chain {
                if cfg.size_weighted {
                    let (wl, wr) = neighbor_weights(sizes, r);
                    er =
                        wl * (z[i] - centers[r - 1]).powi(2) + wr * (z[i] - centers[r + 1]).powi(2);
                } else {
                    er = (z[i] - centers[r - 1]).powi(2) + (z[i] - centers[r + 1]).powi(2);
                }
            }
            e += cfg.alpha * ee + cfg.beta * ea + cfg.gamma * er;
        }
        e
    }
}

/// Size-weighted repelling weights for an interior cluster at rank `r`:
/// `|C_{p+1}| / (|C_{p−1}| + |C_{p+1}|)` toward the left neighbor and the
/// mirror toward the right (larger neighbors push harder → more space for
/// big clusters).
fn neighbor_weights(sizes: &[f64], r: usize) -> (f64, f64) {
    let left = sizes[r - 1];
    let right = sizes[r + 1];
    let total = (left + right).max(1e-12);
    (right / total, left / total)
}

fn neighbor_weights_centered(sizes: &[f64], r: usize, chain: usize) -> (f64, f64) {
    if r > 0 && r + 1 < chain {
        neighbor_weights(sizes, r)
    } else {
        (1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_lines() -> (Vec<f64>, Vec<f64>, Vec<u32>) {
        // Cluster 0 lines live around 0.3, cluster 1 around 0.7, but with
        // overlap that the energy model should tighten.
        let x = vec![0.25, 0.35, 0.45, 0.55, 0.65, 0.75];
        let y = vec![0.35, 0.25, 0.40, 0.60, 0.75, 0.65];
        let c = vec![0, 0, 0, 1, 1, 1];
        (x, y, c)
    }

    #[test]
    fn converges_and_reduces_energy() {
        let (x, y, c) = two_cluster_lines();
        let model = EnergyModel::new(EnergyConfig::default());
        let r = model.optimize(&x, &y, &c);
        assert!(r.iterations >= 1);
        assert!(r.iterations <= 500);
        assert!(r.energy.is_finite());
    }

    #[test]
    fn same_cluster_lines_merge_closer() {
        let (x, y, c) = two_cluster_lines();
        let model = EnergyModel::new(EnergyConfig::default());
        let r = model.optimize(&x, &y, &c);
        let spread = |vals: &[f64]| -> f64 {
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).abs()).sum::<f64>() / vals.len() as f64
        };
        let mids: Vec<f64> = x.iter().zip(&y).map(|(a, b)| (a + b) / 2.0).collect();
        let c0_before = spread(&mids[0..3]);
        let c0_after = spread(&r.z[0..3]);
        assert!(
            c0_after < c0_before,
            "cluster should tighten: {c0_before} → {c0_after}"
        );
    }

    #[test]
    fn pure_elastic_keeps_midpoints() {
        let (x, y, c) = two_cluster_lines();
        let cfg = EnergyConfig {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            ..EnergyConfig::default()
        };
        let r = EnergyModel::new(cfg).optimize(&x, &y, &c);
        for (zi, (xi, yi)) in r.z.iter().zip(x.iter().zip(&y)) {
            assert!((zi - (xi + yi) / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_attraction_collapses_clusters() {
        let (x, y, c) = two_cluster_lines();
        let cfg = EnergyConfig {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
            epsilon: 1e-9,
            ..EnergyConfig::default()
        };
        let r = EnergyModel::new(cfg).optimize(&x, &y, &c);
        // All cluster-0 z within a hair of each other.
        assert!((r.z[0] - r.z[1]).abs() < 1e-6);
        assert!((r.z[1] - r.z[2]).abs() < 1e-6);
    }

    #[test]
    fn three_clusters_repel_middle() {
        // Three clusters; with repelling on, the gap between adjacent
        // cluster centers should not collapse.
        let x = vec![0.1, 0.15, 0.5, 0.55, 0.9, 0.95];
        let y = vec![0.15, 0.1, 0.55, 0.5, 0.95, 0.9];
        let c = vec![0, 0, 1, 1, 2, 2];
        let r = EnergyModel::new(EnergyConfig::default()).optimize(&x, &y, &c);
        assert!(r.centers[1] - r.centers[0] > 0.05);
        assert!(r.centers[2] - r.centers[1] > 0.05);
    }

    #[test]
    fn size_weighted_variant_runs() {
        let (x, y, c) = two_cluster_lines();
        let cfg = EnergyConfig {
            size_weighted: true,
            ..EnergyConfig::default()
        };
        let r = EnergyModel::new(cfg).optimize(&x, &y, &c);
        assert_eq!(r.z.len(), 6);
        assert!(r.energy.is_finite());
    }

    #[test]
    fn empty_input() {
        let r = EnergyModel::new(EnergyConfig::default()).optimize(&[], &[], &[]);
        assert!(r.z.is_empty());
        assert_eq!(r.iterations, 0);
    }
}
