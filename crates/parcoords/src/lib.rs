//! Parallel coordinates with crossing-minimizing dimension ordering and
//! energy-based cluster de-cluttering (Ch. 5).
//!
//! Two optimizations make cluster structure visible:
//!
//! * **Dimension ordering** (§5.1.2/§5.2.2) — a crossing between two
//!   items on adjacent coordinates is an order change; counting them costs
//!   `O(n log n)` (Algorithm 8, here via a Fenwick tree). Minimizing total
//!   crossings over coordinate orders is the metric Hamiltonian-path
//!   problem; an MST-based 2-approximation and an exact Held–Karp solver
//!   are provided.
//! * **Energy reduction** (§5.1.1/§5.2.1) — an assistant coordinate
//!   between each adjacent pair holds one point per line, positioned by
//!   minimizing elastic + attraction + repelling energies (Algorithm 7
//!   with pseudo-centers), pulling same-cluster lines together and pushing
//!   clusters apart. Bézier smoothing renders the result.

pub mod bezier;
pub mod crossings;
pub mod energy;
pub mod order;
pub mod svg;

pub use crossings::{count_crossings, crossing_matrix};
pub use energy::{EnergyConfig, EnergyModel};
pub use order::{order_dimensions, OrderMethod};
