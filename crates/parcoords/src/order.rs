//! Dimension ordering (§5.2.2).
//!
//! Treat each coordinate as a vertex of a complete graph whose edge
//! weights are pairwise crossing counts; the best left-to-right coordinate
//! order is the minimum-weight Hamiltonian path (NP-hard). Two solvers:
//!
//! * **MST 2-approximation** — Prim MST + preorder DFS walk, the paper's
//!   "linear 2-approximation based on the well-known minimum spanning tree
//!   approach" ("order-ap" in Table 5.2).
//! * **Exact Held–Karp** — `O(2^d · d²)` dynamic program with free
//!   endpoints ("order-ex"), feasible for the paper's 6–20 dimensions.
//!
//! Maximizing crossings (some analysts want to see negative correlations,
//! §5.1.2) reuses both solvers on complemented weights.

/// Which solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderMethod {
    /// MST-walk 2-approximation.
    MstApprox,
    /// Held–Karp exact dynamic program.
    Exact,
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize total crossings (de-clutter).
    Minimize,
    /// Maximize total crossings (expose negative correlation).
    Maximize,
}

/// Orders dimensions given the pairwise crossing matrix.
pub fn order_dimensions(matrix: &[Vec<u64>], method: OrderMethod) -> Vec<usize> {
    order_dimensions_with(matrix, method, Objective::Minimize)
}

/// Orders dimensions with an explicit objective.
pub fn order_dimensions_with(
    matrix: &[Vec<u64>],
    method: OrderMethod,
    objective: Objective,
) -> Vec<usize> {
    let d = matrix.len();
    if d <= 2 {
        return (0..d).collect();
    }
    let weights: Vec<Vec<u64>> = match objective {
        Objective::Minimize => matrix.to_vec(),
        Objective::Maximize => {
            let max = matrix
                .iter()
                .flat_map(|r| r.iter())
                .copied()
                .max()
                .unwrap_or(0);
            matrix
                .iter()
                .map(|row| row.iter().map(|&w| max - w).collect())
                .collect()
        }
    };
    match method {
        OrderMethod::MstApprox => mst_walk(&weights),
        OrderMethod::Exact => held_karp(&weights),
    }
}

/// Prim MST + preorder DFS walk.
fn mst_walk(w: &[Vec<u64>]) -> Vec<usize> {
    let d = w.len();
    let mut in_tree = vec![false; d];
    let mut best = vec![u64::MAX; d];
    let mut parent = vec![usize::MAX; d];
    best[0] = 0;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); d];
    for _ in 0..d {
        let v = (0..d)
            .filter(|&v| !in_tree[v])
            .min_by_key(|&v| best[v])
            .expect("some vertex outside the tree");
        in_tree[v] = true;
        if parent[v] != usize::MAX {
            children[parent[v]].push(v);
        }
        for u in 0..d {
            if !in_tree[u] && w[v][u] < best[u] {
                best[u] = w[v][u];
                parent[u] = v;
            }
        }
    }
    // Preorder walk, children cheapest-first for a tighter path.
    for ch in &mut children {
        ch.sort_unstable();
    }
    let mut order = Vec::with_capacity(d);
    let mut stack = vec![0usize];
    while let Some(v) = stack.pop() {
        order.push(v);
        let mut kids = children[v].clone();
        kids.sort_unstable_by_key(|&c| std::cmp::Reverse(w[v][c]));
        stack.extend(kids); // cheapest popped first
    }
    order
}

/// Held–Karp minimum Hamiltonian path with free endpoints.
fn held_karp(w: &[Vec<u64>]) -> Vec<usize> {
    let d = w.len();
    assert!(
        d <= 20,
        "Held–Karp is exponential; use MstApprox for d > 20"
    );
    let full = 1usize << d;
    // dp[mask][v] = min cost of a path visiting `mask`, ending at v.
    let mut dp = vec![vec![u64::MAX; d]; full];
    let mut back = vec![vec![usize::MAX; d]; full];
    for v in 0..d {
        dp[1 << v][v] = 0;
    }
    for mask in 1..full {
        for v in 0..d {
            let cost = dp[mask][v];
            if cost == u64::MAX || mask & (1 << v) == 0 {
                continue;
            }
            for u in 0..d {
                if mask & (1 << u) != 0 {
                    continue;
                }
                let nm = mask | (1 << u);
                let nc = cost + w[v][u];
                if nc < dp[nm][u] {
                    dp[nm][u] = nc;
                    back[nm][u] = v;
                }
            }
        }
    }
    let final_mask = full - 1;
    let mut end = (0..d)
        .min_by_key(|&v| dp[final_mask][v])
        .expect("non-empty dp");
    let mut order = Vec::with_capacity(d);
    let mut mask = final_mask;
    loop {
        order.push(end);
        let prev = back[mask][end];
        if prev == usize::MAX {
            break;
        }
        mask &= !(1 << end);
        end = prev;
    }
    order.reverse();
    order
}

/// Path cost under a weight matrix.
pub fn path_cost(w: &[Vec<u64>], order: &[usize]) -> u64 {
    order.windows(2).map(|p| w[p[0]][p[1]]).sum()
}

/// Orders dimensions while preserving a prescribed relative order of a
/// subset (§5.1.2: "when there is a prescribed order of some coordinates
/// … identify an order that minimizes crossings while preserving the
/// prescribed order").
///
/// Cheapest-insertion heuristic: the prescribed dimensions form the
/// initial chain (in their given order); every remaining dimension is
/// inserted, best-gain first, at the position that adds the least cost.
/// Insertion between prescribed elements never reorders them, so the
/// constraint holds by construction.
pub fn order_with_prescribed(matrix: &[Vec<u64>], prescribed: &[usize]) -> Vec<usize> {
    let d = matrix.len();
    assert!(
        prescribed.iter().all(|&p| p < d),
        "prescribed dimension out of range"
    );
    let mut chain: Vec<usize> = prescribed.to_vec();
    if chain.is_empty() {
        if d == 0 {
            return chain;
        }
        chain.push(0);
    }
    let in_chain: std::collections::HashSet<usize> = chain.iter().copied().collect();
    let mut remaining: Vec<usize> = (0..d).filter(|v| !in_chain.contains(v)).collect();

    while !remaining.is_empty() {
        // For each candidate, find its cheapest insertion slot; commit the
        // candidate with the globally cheapest insertion.
        let mut best: Option<(u64, usize, usize)> = None; // (cost, cand idx, slot)
        for (ci, &cand) in remaining.iter().enumerate() {
            for slot in 0..=chain.len() {
                let added = insertion_cost(matrix, &chain, cand, slot);
                if best.is_none_or(|(c, _, _)| added < c) {
                    best = Some((added, ci, slot));
                }
            }
        }
        let (_, ci, slot) = best.expect("remaining non-empty");
        let cand = remaining.swap_remove(ci);
        chain.insert(slot, cand);
    }
    chain
}

/// Marginal path cost of inserting `cand` at `slot` in `chain`.
fn insertion_cost(w: &[Vec<u64>], chain: &[usize], cand: usize, slot: usize) -> u64 {
    match (slot.checked_sub(1).map(|i| chain[i]), chain.get(slot)) {
        (Some(left), Some(&right)) => {
            w[left][cand] + w[cand][right] - w[left][right].min(w[left][cand] + w[cand][right])
        }
        (Some(left), None) => w[left][cand],
        (None, Some(&right)) => w[cand][right],
        (None, None) => 0,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math
mod tests {
    use super::*;
    use rand::Rng;

    fn random_matrix(d: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = plasma_data::rng::seeded(seed);
        let mut m = vec![vec![0u64; d]; d];
        for a in 0..d {
            for b in (a + 1)..d {
                let w = rng.gen_range(1..1000u64);
                m[a][b] = w;
                m[b][a] = w;
            }
        }
        m
    }

    #[test]
    fn both_methods_return_permutations() {
        let m = random_matrix(8, 1);
        for method in [OrderMethod::MstApprox, OrderMethod::Exact] {
            let o = order_dimensions(&m, method);
            let mut s = o.clone();
            s.sort_unstable();
            assert_eq!(s, (0..8).collect::<Vec<_>>(), "{method:?}");
        }
    }

    #[test]
    fn exact_never_worse_than_approx() {
        for seed in 0..6 {
            let m = random_matrix(9, seed);
            let approx = order_dimensions(&m, OrderMethod::MstApprox);
            let exact = order_dimensions(&m, OrderMethod::Exact);
            assert!(
                path_cost(&m, &exact) <= path_cost(&m, &approx),
                "seed {seed}: exact {} > approx {}",
                path_cost(&m, &exact),
                path_cost(&m, &approx)
            );
        }
    }

    #[test]
    fn approx_within_factor_two_of_exact_on_crossing_metrics() {
        // The MST bound needs the triangle inequality; crossing counts are
        // Kendall-tau distances between permutations, which are metrics.
        use crate::crossings::crossing_matrix;
        for seed in 10..16 {
            let mut rng = plasma_data::rng::seeded(seed);
            let rows: Vec<Vec<f64>> = (0..40)
                .map(|_| (0..8).map(|_| rng.gen::<f64>()).collect())
                .collect();
            let m = crossing_matrix(&rows);
            let approx = path_cost(&m, &order_dimensions(&m, OrderMethod::MstApprox));
            let exact = path_cost(&m, &order_dimensions(&m, OrderMethod::Exact));
            assert!(
                approx <= exact.saturating_mul(2) + 1,
                "seed {seed}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn exact_finds_obvious_chain() {
        // Chain metric: 0-1-2-3 cheap, everything else expensive.
        let d = 4;
        let mut m = vec![vec![100u64; d]; d];
        for v in 0..d {
            m[v][v] = 0;
        }
        for v in 0..d - 1 {
            m[v][v + 1] = 1;
            m[v + 1][v] = 1;
        }
        let exact = order_dimensions(&m, OrderMethod::Exact);
        let cost = path_cost(&m, &exact);
        assert_eq!(cost, 3);
    }

    #[test]
    fn maximize_objective_prefers_heavy_edges() {
        let mut m = vec![vec![0u64; 3]; 3];
        m[0][1] = 10;
        m[1][0] = 10;
        m[0][2] = 1;
        m[2][0] = 1;
        m[1][2] = 1;
        m[2][1] = 1;
        let o = order_dimensions_with(&m, OrderMethod::Exact, Objective::Maximize);
        // Max-crossing path should traverse the weight-10 edge.
        let cost: u64 = o.windows(2).map(|p| m[p[0]][p[1]]).sum();
        assert!(cost >= 11, "order {o:?} cost {cost}");
    }

    #[test]
    fn prescribed_order_is_preserved() {
        let m = random_matrix(9, 21);
        let prescribed = [7usize, 2, 5];
        let order = order_with_prescribed(&m, &prescribed);
        // A permutation…
        let mut s = order.clone();
        s.sort_unstable();
        assert_eq!(s, (0..9).collect::<Vec<_>>());
        // …where 7 appears before 2 appears before 5.
        let pos = |v: usize| order.iter().position(|&x| x == v).expect("present");
        assert!(pos(7) < pos(2));
        assert!(pos(2) < pos(5));
    }

    #[test]
    fn prescribed_empty_reduces_to_unconstrained_permutation() {
        let m = random_matrix(6, 3);
        let order = order_with_prescribed(&m, &[]);
        let mut s = order.clone();
        s.sort_unstable();
        assert_eq!(s, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn prescribed_full_chain_is_identity() {
        let m = random_matrix(5, 9);
        let prescribed = [3usize, 1, 4, 0, 2];
        assert_eq!(order_with_prescribed(&m, &prescribed), prescribed.to_vec());
    }

    #[test]
    fn prescribed_insertion_is_competitive_on_chain_metric() {
        // Chain metric 0-1-2-3-4: prescribing [0, 4] still finds a cheap path.
        let d = 5;
        let mut m = vec![vec![100u64; d]; d];
        for v in 0..d {
            m[v][v] = 0;
        }
        for v in 0..d - 1 {
            m[v][v + 1] = 1;
            m[v + 1][v] = 1;
        }
        let order = order_with_prescribed(&m, &[0, 4]);
        let cost = path_cost(&m, &order);
        assert!(cost <= 103, "insertion produced cost {cost} for {order:?}");
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(
            order_dimensions(&[], OrderMethod::Exact),
            Vec::<usize>::new()
        );
        let one = vec![vec![0u64]];
        assert_eq!(order_dimensions(&one, OrderMethod::MstApprox), vec![0]);
    }
}
