//! SVG rendering of parallel-coordinates visualizations.
//!
//! Renders the classic polyline view and the enhanced view (reordered
//! dimensions + assistant coordinates + Bézier-smoothed lines), colored by
//! cluster — the headless stand-in for Figs. 5.4–5.10.

use std::fmt::Write as _;

use crate::bezier::sample_through;
use crate::energy::{EnergyConfig, EnergyModel};

const COLORS: [&str; 10] = [
    "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf",
];

/// Rendering geometry.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// Canvas width in px.
    pub width: f64,
    /// Canvas height in px.
    pub height: f64,
    /// Margin on every side.
    pub margin: f64,
}

impl Default for Layout {
    fn default() -> Self {
        Self {
            width: 900.0,
            height: 420.0,
            margin: 40.0,
        }
    }
}

/// Normalizes each column of `rows` to `[0, 1]` (min–max).
pub fn normalize_columns(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let d = rows[0].len();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for r in rows {
        for (k, &v) in r.iter().enumerate() {
            lo[k] = lo[k].min(v);
            hi[k] = hi[k].max(v);
        }
    }
    rows.iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(k, &v)| {
                    if hi[k] > lo[k] {
                        (v - lo[k]) / (hi[k] - lo[k])
                    } else {
                        0.5
                    }
                })
                .collect()
        })
        .collect()
}

/// Renders the plain polyline view with dimensions in the given order.
pub fn render_polylines(
    rows: &[Vec<f64>],
    clusters: &[u32],
    order: &[usize],
    layout: Layout,
) -> String {
    let norm = normalize_columns(rows);
    let mut svg = svg_header(layout, order.len());
    for (i, r) in norm.iter().enumerate() {
        let color = COLORS[clusters.get(i).copied().unwrap_or(0) as usize % COLORS.len()];
        let mut d = String::new();
        for (k, &dim) in order.iter().enumerate() {
            let (px, py) = place(layout, order.len(), k as f64, r[dim]);
            let cmd = if k == 0 { 'M' } else { 'L' };
            let _ = write!(d, "{cmd}{px:.1},{py:.1} ");
        }
        let _ = writeln!(
            svg,
            r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="0.8" opacity="0.55"/>"#
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders the enhanced view: assistant coordinates between each adjacent
/// pair positioned by the energy model, lines Bézier-smoothed through
/// them.
pub fn render_energy(
    rows: &[Vec<f64>],
    clusters: &[u32],
    order: &[usize],
    energy: EnergyConfig,
    layout: Layout,
) -> String {
    let norm = normalize_columns(rows);
    let n = norm.len();
    let d = order.len();
    let model = EnergyModel::new(energy);
    // One assistant column per adjacent pair.
    let mut assist: Vec<Vec<f64>> = Vec::with_capacity(d.saturating_sub(1));
    for w in order.windows(2) {
        let x: Vec<f64> = norm.iter().map(|r| r[w[0]]).collect();
        let y: Vec<f64> = norm.iter().map(|r| r[w[1]]).collect();
        assist.push(model.optimize(&x, &y, clusters).z);
    }

    let mut svg = svg_header(layout, d);
    for i in 0..n {
        let color = COLORS[clusters.get(i).copied().unwrap_or(0) as usize % COLORS.len()];
        let mut dstr = String::new();
        for k in 0..d.saturating_sub(1) {
            let p0 = place(layout, d, k as f64, norm[i][order[k]]);
            let p2 = place(layout, d, k as f64 + 1.0, norm[i][order[k + 1]]);
            let mid = place(layout, d, k as f64 + 0.5, assist[k][i]);
            for (s, p) in sample_through(p0, mid, p2, 8).into_iter().enumerate() {
                let cmd = if k == 0 && s == 0 { 'M' } else { 'L' };
                let _ = write!(dstr, "{cmd}{:.1},{:.1} ", p.0, p.1);
            }
        }
        let _ = writeln!(
            svg,
            r#"<path d="{dstr}" fill="none" stroke="{color}" stroke-width="0.8" opacity="0.55"/>"#
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn svg_header(layout: Layout, dims: usize) -> String {
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        layout.width, layout.height, layout.width, layout.height
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{}" height="{}" fill="white"/>"#,
        layout.width, layout.height
    );
    // Axes.
    for k in 0..dims {
        let (x, _) = place(layout, dims, k as f64, 0.0);
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#999" stroke-width="1"/>"##,
            layout.margin,
            layout.height - layout.margin
        );
    }
    svg
}

/// Maps (axis position `k` ∈ [0, dims−1], normalized value `v`) to pixels.
fn place(layout: Layout, dims: usize, k: f64, v: f64) -> (f64, f64) {
    let usable_w = layout.width - 2.0 * layout.margin;
    let usable_h = layout.height - 2.0 * layout.margin;
    let x = layout.margin + usable_w * k / (dims.max(2) - 1) as f64;
    let y = layout.height - layout.margin - usable_h * v.clamp(0.0, 1.0);
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> (Vec<Vec<f64>>, Vec<u32>) {
        (
            vec![
                vec![0.0, 10.0, 5.0],
                vec![1.0, 9.0, 6.0],
                vec![10.0, 0.0, 1.0],
                vec![9.0, 1.0, 0.0],
            ],
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn normalize_hits_unit_range() {
        let (r, _) = rows();
        let n = normalize_columns(&r);
        for col in 0..3 {
            let vals: Vec<f64> = n.iter().map(|row| row[col]).collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!((lo - 0.0).abs() < 1e-12);
            assert!((hi - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn polyline_svg_has_one_path_per_row() {
        let (r, c) = rows();
        let svg = render_polylines(&r, &c, &[0, 1, 2], Layout::default());
        assert_eq!(svg.matches("<path").count(), 4);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn energy_svg_renders_curves() {
        let (r, c) = rows();
        let svg = render_energy(
            &r,
            &c,
            &[0, 1, 2],
            EnergyConfig::default(),
            Layout::default(),
        );
        assert_eq!(svg.matches("<path").count(), 4);
        // Sampled curves contain many line segments per path.
        assert!(svg.matches('L').count() > 4 * 8);
    }

    #[test]
    fn constant_column_normalizes_to_half() {
        let rows = vec![vec![3.0], vec![3.0]];
        let n = normalize_columns(&rows);
        assert_eq!(n[0][0], 0.5);
    }
}
