//! Property tests for parallel coordinates: crossing counts against the
//! naive oracle, metric structure, ordering optimality relations, and
//! energy-model behavior.

use proptest::prelude::*;

use plasma_parcoords::crossings::{
    count_crossings, count_crossings_naive, crossing_matrix, ranks, total_crossings,
};
use plasma_parcoords::energy::{EnergyConfig, EnergyModel};
use plasma_parcoords::order::{order_dimensions, path_cost, OrderMethod};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fenwick_matches_naive(
        x in proptest::collection::vec(-100.0f64..100.0, 2..120),
        seed in 0u64..1000
    ) {
        let mut rng = plasma_data::rng::seeded(seed);
        use rand::Rng;
        let y: Vec<f64> = (0..x.len()).map(|_| rng.gen_range(-100.0..100.0)).collect();
        prop_assert_eq!(count_crossings(&x, &y), count_crossings_naive(&x, &y));
    }

    #[test]
    fn crossings_symmetric_and_bounded(
        x in proptest::collection::vec(-10.0f64..10.0, 2..80),
        y_seed in 0u64..500
    ) {
        let mut rng = plasma_data::rng::seeded(y_seed);
        use rand::Rng;
        let y: Vec<f64> = (0..x.len()).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let c = count_crossings(&x, &y);
        prop_assert_eq!(c, count_crossings(&y, &x));
        let n = x.len() as u64;
        prop_assert!(c <= n * (n - 1) / 2);
    }

    #[test]
    fn crossing_counts_form_a_metric(rows in proptest::collection::vec(
        proptest::collection::vec(-5.0f64..5.0, 4),
        4..40
    )) {
        // Kendall-tau distances: symmetric, zero diagonal, triangle
        // inequality across any dimension triple.
        let m = crossing_matrix(&rows);
        let d = m.len();
        for a in 0..d {
            prop_assert_eq!(m[a][a], 0);
            for b in 0..d {
                prop_assert_eq!(m[a][b], m[b][a]);
                for c in 0..d {
                    prop_assert!(m[a][c] <= m[a][b] + m[b][c], "triangle violated");
                }
            }
        }
    }

    #[test]
    fn ranks_are_a_permutation(values in proptest::collection::vec(-50.0f64..50.0, 1..100)) {
        let r = ranks(&values);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..values.len() as u32).collect();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn exact_ordering_is_no_worse_than_approx(rows in proptest::collection::vec(
        proptest::collection::vec(-5.0f64..5.0, 6),
        6..30
    )) {
        let m = crossing_matrix(&rows);
        let exact = order_dimensions(&m, OrderMethod::Exact);
        let approx = order_dimensions(&m, OrderMethod::MstApprox);
        prop_assert!(path_cost(&m, &exact) <= path_cost(&m, &approx));
        prop_assert!(total_crossings(&m, &exact) <= total_crossings(&m, &approx));
    }

    #[test]
    fn energy_z_positions_stay_in_range(
        pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0u32..3), 3..60)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let c: Vec<u32> = pairs.iter().map(|p| p.2).collect();
        let r = EnergyModel::new(EnergyConfig::default()).optimize(&x, &y, &c);
        for &z in &r.z {
            // z is a convex combination of midpoints and centers, all of
            // which live in [0, 1].
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&z), "z = {z}");
        }
        prop_assert!(r.energy.is_finite());
        prop_assert!(r.energy >= 0.0);
    }

    #[test]
    fn zero_beta_gamma_is_identity_on_midpoints(
        pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..40)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let c = vec![0u32; x.len()];
        let cfg = EnergyConfig {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            ..EnergyConfig::default()
        };
        let r = EnergyModel::new(cfg).optimize(&x, &y, &c);
        for (i, &z) in r.z.iter().enumerate() {
            prop_assert!((z - (x[i] + y[i]) / 2.0).abs() < 1e-9);
        }
    }
}
