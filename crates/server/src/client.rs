//! A blocking protocol client over one TCP connection.
//!
//! [`ProbeClient`] frames requests, reads reply frames, and sorts
//! unsolicited `watch_delta` event frames (pushed after ingests
//! elsewhere) into a side buffer so [`request`](ProbeClient::request)
//! always returns the actual reply. Tests and the `plasma-serve`
//! self-check drive it; it also documents, in code, what any
//! non-Rust client must do.
//!
//! Every received frame is kept as its **raw** wire string next to the
//! parsed value: the trace harness compares raw strings, so bit-identity
//! claims never pass through a decode/re-encode that could mask a
//! formatting drift.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::json::{self, Json};
use crate::protocol::Request;

/// One received frame: the exact bytes off the wire plus their parse.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The frame as received, newline stripped.
    pub raw: String,
    /// The parsed document.
    pub json: Json,
}

impl Frame {
    /// The frame's `type` field.
    pub fn frame_type(&self) -> &str {
        self.json.get("type").and_then(Json::as_str).unwrap_or("")
    }

    /// True for pushed `watch_delta` event frames.
    pub fn is_event(&self) -> bool {
        self.json.get("event").and_then(Json::as_bool) == Some(true)
    }

    /// The `code` field of an error frame.
    pub fn error_code(&self) -> Option<&str> {
        self.json.get("code").and_then(Json::as_str)
    }
}

/// A blocking client over one connection.
pub struct ProbeClient {
    stream: TcpStream,
    buf: Vec<u8>,
    events: VecDeque<Frame>,
}

impl ProbeClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ProbeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ProbeClient {
            stream,
            buf: Vec::new(),
            events: VecDeque::new(),
        })
    }

    /// Sends one already-encoded frame (no newline).
    pub fn send_raw(&mut self, frame: &str) -> std::io::Result<()> {
        let mut bytes = frame.as_bytes().to_vec();
        bytes.push(b'\n');
        self.stream.write_all(&bytes)?;
        self.stream.flush()
    }

    /// Sends a request and returns its reply, buffering any event
    /// frames that arrive first.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Frame> {
        self.send_raw(&request.encode())?;
        loop {
            let frame = self.read_frame(None)?.ok_or_else(|| {
                std::io::Error::new(ErrorKind::UnexpectedEof, "server closed the connection")
            })?;
            if frame.is_event() {
                self.events.push_back(frame);
            } else {
                return Ok(frame);
            }
        }
    }

    /// The next event frame: a buffered one, or whatever arrives within
    /// `timeout` (`Ok(None)` when nothing does).
    pub fn poll_event(&mut self, timeout: Duration) -> std::io::Result<Option<Frame>> {
        if let Some(frame) = self.events.pop_front() {
            return Ok(Some(frame));
        }
        match self.read_frame(Some(timeout))? {
            Some(frame) if frame.is_event() => Ok(Some(frame)),
            Some(frame) => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("expected an event frame, got {}", frame.raw),
            )),
            None => Ok(None),
        }
    }

    /// Reads frames until a non-event frame arrives (events are
    /// buffered), or the timeout lapses (`Ok(None)`).
    pub fn read_reply(&mut self, timeout: Duration) -> std::io::Result<Option<Frame>> {
        let started = Instant::now();
        loop {
            let left = match timeout.checked_sub(started.elapsed()) {
                Some(left) if !left.is_zero() => left,
                _ => return Ok(None),
            };
            match self.read_frame(Some(left))? {
                None => return Ok(None),
                Some(frame) if frame.is_event() => self.events.push_back(frame),
                Some(frame) => return Ok(Some(frame)),
            }
        }
    }

    /// Buffered event frames received so far (does not read the socket).
    pub fn take_events(&mut self) -> Vec<Frame> {
        self.events.drain(..).collect()
    }

    /// Drops the connection abruptly — from the server's side this is a
    /// client death, which fault-injection tests rely on.
    pub fn abort(self) {
        drop(self);
    }

    /// Reads one frame; `deadline: None` blocks until a frame or EOF.
    fn read_frame(&mut self, timeout: Option<Duration>) -> std::io::Result<Option<Frame>> {
        let started = Instant::now();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(idx) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=idx).collect();
                let raw = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                let json = json::parse(&raw).map_err(|e| {
                    std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("unparseable frame {raw:?}: {e}"),
                    )
                })?;
                return Ok(Some(Frame { raw, json }));
            }
            let remaining = match timeout {
                None => None,
                Some(limit) => match limit.checked_sub(started.elapsed()) {
                    Some(left) if !left.is_zero() => Some(left),
                    _ => return Ok(None),
                },
            };
            self.stream
                .set_read_timeout(remaining.map(|r| r.min(Duration::from_millis(50))))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if timeout.is_none() {
                        continue;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}
