//! The transport-agnostic serving core: `Request -> Response` dispatch.
//!
//! Nothing in this module touches a socket. A [`ProbeService`] holds the
//! published corpora (each a [`plasma_core::StreamingSession`] master
//! multiplexed onto one [`SharedKnowledgeCache`]); a [`Connection`] is
//! one client's view — at most one attached session plus its watches —
//! and [`Connection::handle`] maps each decoded [`Request`] to an
//! [`Interaction`]: one response frame plus any event frames the request
//! produced. The TCP layer ([`crate::server`]), the trace recorder
//! ([`crate::trace`]), and any future framing all drive this same entry
//! point, which is what makes recorded traces replayable across
//! transports.
//!
//! # Panic → error boundary
//!
//! The engine guards invariants with panics: probing a grown cache from
//! a stale pinned snapshot, attaching across hash families, seed
//! mismatches. A server must outlive all of them, so every engine call
//! sits behind the crate-private `catch_engine`: the panic is caught at the handler
//! boundary, its message is mapped to a structured [`ErrorCode`]
//! (`stale_session` for the stale-prefix guard, `engine_panic`
//! otherwise), and the connection keeps serving. A thread-local shield
//! suppresses the default panic hook's stderr spew for these *expected*
//! panics while leaving genuine bugs loud.
//!
//! # Determinism
//!
//! Everything a response carries is deterministic for a given operation
//! history (timing fields never cross the protocol boundary), and watch
//! deltas produced by a connection's own ingest are drained
//! synchronously inside [`Connection::handle`] — so a sequential script
//! against a fresh service produces one exact frame sequence, which the
//! trace harness pins bit-for-bit against direct library calls.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, RwLock};
use std::time::Duration;

use plasma_core::durable::{self, CorpusStore};
use plasma_core::{
    ApssConfig, CacheCapacity, CacheRegistry, RegistryCapacity, Session, SharedKnowledgeCache,
    StreamingSession, WalSyncStats,
};
use plasma_data::similarity::Similarity;

use crate::persist::{self, CorpusMeta};
use crate::protocol::{
    fingerprint_hex, fingerprint_parse, ErrorCode, PublishCfg, Request, Response,
};

/// One handled request: the response frame plus any event frames it
/// produced (watch registration answers, own-ingest deltas), in delivery
/// order.
#[derive(Debug)]
pub struct Interaction {
    /// The reply to the request.
    pub response: Response,
    /// Event frames to push after the reply, in order.
    pub events: Vec<Response>,
}

impl Interaction {
    fn reply(response: Response) -> Self {
        Interaction {
            response,
            events: Vec::new(),
        }
    }

    fn error(code: ErrorCode, message: impl Into<String>) -> Self {
        Interaction::reply(Response::Error {
            code,
            message: message.into(),
        })
    }
}

/// The per-corpus ingest broadcast. Pushers of connections attached to
/// this corpus block here, and only an ingest adopted *into this corpus*
/// (or a service drain) wakes them. A single service-wide signal — the
/// previous design — woke every pusher on every ingest regardless of
/// corpus, a thundering herd that scaled with corpora × connections and
/// made each wakeup drain nothing; the per-corpus split is the fix, and
/// `wakeups` counts signalled (non-timeout) returns so tests can pin the
/// behaviour.
struct IngestSignal {
    stamp: Mutex<u64>,
    cvar: Condvar,
    wakeups: AtomicU64,
}

impl IngestSignal {
    fn new() -> Self {
        IngestSignal {
            stamp: Mutex::new(0),
            cvar: Condvar::new(),
            wakeups: AtomicU64::new(0),
        }
    }

    fn stamp(&self) -> u64 {
        *self.stamp.lock().expect("ingest signal lock")
    }

    fn bump(&self) {
        *self.stamp.lock().expect("ingest signal lock") += 1;
        self.cvar.notify_all();
    }

    fn notify_all(&self) {
        self.cvar.notify_all();
    }

    /// Blocks until the stamp moves past `seen`, the timeout lapses, or
    /// `draining` turns true; returns the current stamp and whether this
    /// was a signalled wakeup (the stamp moved) rather than a timeout.
    fn wait(&self, seen: u64, timeout: Duration, draining: impl Fn() -> bool) -> (u64, bool) {
        let guard = self.stamp.lock().expect("ingest signal lock");
        let (guard, _) = self
            .cvar
            .wait_timeout_while(guard, timeout, |stamp| *stamp == seen && !draining())
            .expect("ingest signal lock");
        let woken = *guard != seen;
        if woken {
            self.wakeups.fetch_add(1, Ordering::Relaxed);
        }
        (*guard, woken)
    }
}

/// One published corpus: a master streaming session whose forks serve
/// every attached connection, all sharing one knowledge cache and one
/// watch registry.
struct ServedCorpus {
    name: String,
    measure: Similarity,
    cfg: ApssConfig,
    /// Forked per attach; also the corpus-wide watch/epoch vantage
    /// point. The mutex guards only fork/inspect — probes and ingests
    /// run on the forks, serialized by the corpus's own record lock.
    master: Mutex<StreamingSession>,
    /// Bumped after every adopted ingest into *this* corpus.
    signal: IngestSignal,
    /// The corpus's durable half (snapshot files + ingest WAL) when the
    /// service runs with a data directory; `None` means volatile.
    store: Option<CorpusStore>,
    /// Serializes engine-mutate + WAL-append (ingest) against
    /// snapshot-write + WAL-truncate (the snapshotter), so a snapshot's
    /// `(records, sketches)` view can never interleave with a
    /// half-persisted ingest. Lock order: `persist` before `master`.
    persist: Mutex<()>,
}

impl ServedCorpus {
    fn new(
        name: String,
        measure: Similarity,
        cfg: ApssConfig,
        master: StreamingSession,
        store: Option<CorpusStore>,
    ) -> Self {
        ServedCorpus {
            name,
            measure,
            cfg,
            master: Mutex::new(master),
            signal: IngestSignal::new(),
            store,
            persist: Mutex::new(()),
        }
    }
}

/// One corpus directory's recovery outcome at service boot.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The corpus fingerprint (32 hex digits — also its directory name).
    pub fingerprint: String,
    /// `Ok` with provenance when the corpus is being served warm; `Err`
    /// with the structured refusal otherwise. A refused corpus is
    /// skipped — the service still boots and serves the others.
    pub outcome: Result<RecoveredStats, String>,
}

/// Provenance of one warm-restarted corpus.
#[derive(Debug, Clone)]
pub struct RecoveredStats {
    /// The corpus's publish-time name.
    pub name: String,
    /// Records served after recovery.
    pub records: usize,
    /// Epoch served after recovery (snapshot epoch + replayed entries).
    pub epoch: u64,
    /// WAL entries replayed past the snapshot.
    pub replayed_entries: usize,
    /// True when a torn (never-acked) WAL tail was discarded.
    pub wal_tail_discarded: bool,
}

/// The shared serving state: published corpora over one cache registry.
pub struct ProbeService {
    registry: CacheRegistry,
    corpora: RwLock<BTreeMap<String, Arc<ServedCorpus>>>,
    /// When set, every publish persists (meta + snapshot + WAL) under
    /// `data_dir/<fingerprint>/` and boot recovers what it finds there.
    data_dir: Option<PathBuf>,
    active_sessions: AtomicUsize,
    draining: AtomicBool,
}

impl Default for ProbeService {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeService {
    /// An empty, volatile service.
    pub fn new() -> Self {
        ProbeService {
            registry: CacheRegistry::new(),
            corpora: RwLock::new(BTreeMap::new()),
            data_dir: None,
            active_sessions: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// A volatile service whose cache registry enforces `capacity` —
    /// the multi-tenant churn shape: publishes beyond the cap evict
    /// least-recently-used caches from the registry (served corpora keep
    /// their own `Arc`s; see [`CacheRegistry`] eviction semantics).
    pub fn with_registry_capacity(capacity: RegistryCapacity) -> Self {
        ProbeService {
            registry: CacheRegistry::with_capacity(capacity, CacheCapacity::unbounded()),
            corpora: RwLock::new(BTreeMap::new()),
            data_dir: None,
            active_sessions: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// Whole caches evicted from the registry over its lifetime — the
    /// churn counter the load harness reports under registry pressure.
    pub fn registry_evictions(&self) -> u64 {
        self.registry.evicted_caches()
    }

    /// Per-corpus WAL group-commit counters `(fingerprint, stats)`,
    /// persisted corpora only. Acked-appends is exact for a quiesced
    /// service; the sync count tells how far concurrent ingests
    /// coalesced (`syncs <= acked_appends` always).
    pub fn wal_sync_stats(&self) -> Vec<(String, WalSyncStats)> {
        let corpora = self.corpora.read().expect("corpora lock");
        corpora
            .iter()
            .filter_map(|(fp, c)| c.store.as_ref().map(|s| (fp.clone(), s.sync_stats())))
            .collect()
    }

    /// Signalled (non-timeout) pusher wakeups summed across corpora.
    pub fn ingest_wakeups(&self) -> u64 {
        let corpora = self.corpora.read().expect("corpora lock");
        corpora
            .values()
            .map(|c| c.signal.wakeups.load(Ordering::Relaxed))
            .sum()
    }

    /// A durable service over `dir`: every corpus directory found there
    /// is recovered warm (snapshot + WAL replay through the normal
    /// ingest path) and re-served under its original fingerprint, and
    /// every future publish/ingest persists. Recovery failures are
    /// per-corpus and structured — a corrupt corpus is reported and
    /// skipped, never silently re-served cold.
    pub fn with_data_dir(
        dir: impl Into<PathBuf>,
    ) -> std::io::Result<(ProbeService, Vec<RecoveryReport>)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut service = ProbeService::new();
        service.data_dir = Some(dir.clone());
        let mut names: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if fingerprint_parse(&name).is_some() {
                names.push(name);
            }
        }
        names.sort();
        let mut reports = Vec::new();
        for name in names {
            let fp = fingerprint_parse(&name).expect("names were filtered");
            let outcome = service.recover_corpus(&dir.join(&name), fp);
            reports.push(RecoveryReport {
                fingerprint: name,
                outcome,
            });
        }
        Ok((service, reports))
    }

    /// Recovers one corpus directory into the service.
    fn recover_corpus(&self, dir: &Path, fp: u128) -> Result<RecoveredStats, String> {
        let meta = persist::read_meta(dir)?;
        let cfg = meta.cfg.to_apss_config();
        let recovered = durable::recover(dir, meta.measure, cfg, CacheCapacity::unbounded())
            .map_err(|e| e.to_string())?;
        if recovered.fingerprint != fp {
            return Err(format!(
                "directory is named {} but its snapshot carries fingerprint {}",
                fingerprint_hex(fp),
                fingerprint_hex(recovered.fingerprint)
            ));
        }
        let store = CorpusStore::open(dir, fp).map_err(|e| e.to_string())?;
        let stats = RecoveredStats {
            name: meta.name.clone(),
            records: recovered.session.len(),
            epoch: recovered.epoch,
            replayed_entries: recovered.replayed_entries,
            wal_tail_discarded: recovered.wal_tail_discarded,
        };
        // Future attaches and re-publishes of the same records find the
        // warm cache by fingerprint, exactly as if this process had
        // built it.
        self.registry.install(fp, recovered.cache);
        self.corpora.write().expect("corpora lock").insert(
            fingerprint_hex(fp),
            Arc::new(ServedCorpus::new(
                meta.name,
                meta.measure,
                cfg,
                recovered.session,
                Some(store),
            )),
        );
        Ok(stats)
    }

    /// The data directory, when the service is durable.
    pub fn data_dir(&self) -> Option<&Path> {
        self.data_dir.as_deref()
    }

    /// True once a drain was requested; the transport stops accepting
    /// and the handler refuses new publishes/attaches.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests a drain and wakes every corpus's ingest-signal waiters
    /// so pusher threads can observe the flag.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let corpora = self.corpora.read().expect("corpora lock");
        for corpus in corpora.values() {
            corpus.signal.notify_all();
        }
    }

    /// Snapshots every persisted corpus whose WAL holds more than
    /// `min_wal_bytes` of entries (beyond the fixed header), truncating
    /// its log. Returns `(fingerprint, snapshot bytes)` per corpus
    /// written. Lock order is persist → master (view only), the same
    /// order ingest uses, so the snapshot view is always a consistent
    /// acked prefix.
    pub fn snapshot_corpora(&self, min_wal_bytes: u64) -> Vec<(String, Result<u64, String>)> {
        let corpora: Vec<(String, Arc<ServedCorpus>)> = {
            let guard = self.corpora.read().expect("corpora lock");
            guard.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = Vec::new();
        for (fp, corpus) in corpora {
            let Some(store) = &corpus.store else { continue };
            if store.wal_bytes() <= durable::WAL_HEADER_BYTES + min_wal_bytes {
                continue;
            }
            let _persist = corpus.persist.lock().expect("persist lock");
            let view = corpus.master.lock().expect("master lock").persist_view();
            let result = match view {
                Some((records, sketches, _epoch)) => store
                    .write_snapshot(&records, &sketches)
                    .map_err(|e| e.to_string()),
                None => Err("corpus has no cache to snapshot".to_string()),
            };
            out.push((fp, result));
        }
        out
    }

    /// Snapshots every persisted corpus with any logged entries at all
    /// (e.g. at drain, so the next boot needs no WAL replay).
    pub fn snapshot_now(&self) -> Vec<(String, Result<u64, String>)> {
        self.snapshot_corpora(0)
    }

    fn corpus(&self, fingerprint: &str) -> Option<Arc<ServedCorpus>> {
        self.corpora
            .read()
            .expect("corpora lock")
            .get(fingerprint)
            .cloned()
    }

    /// Live attached sessions across all connections.
    pub fn session_count(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Live watches across all corpora.
    pub fn watch_count(&self) -> usize {
        let corpora = self.corpora.read().expect("corpora lock");
        corpora
            .values()
            .map(|c| c.master.lock().expect("master lock").watch_count())
            .sum()
    }
}

/// Session state of one connection.
enum SessionKind {
    /// A fork of the corpus master: may probe, ingest, and watch. The
    /// fork shares the corpus records, cache, and watch registry, so the
    /// session alone keeps the served state alive. The corpus handle
    /// carries the ingest signal and durable store this session's
    /// ingests must reach.
    Stream {
        session: StreamingSession,
        corpus: Arc<ServedCorpus>,
    },
    /// A probe-only snapshot of the corpus at attach time; goes stale
    /// (structured `stale_session` error) once the corpus grows.
    Pinned { session: Session },
}

struct ConnState {
    session: Option<SessionKind>,
    /// Live watches in registration order, keyed by the
    /// connection-scoped id echoed on delta frames.
    watches: Vec<(u64, plasma_core::WatchHandle)>,
    next_watch_id: u64,
}

/// A pusher thread's position on its connection's corpus ingest signal.
/// Opaque: created by [`Connection::ingest_cursor`], advanced by
/// [`Connection::wait_ingest_signal`]. It remembers which corpus the
/// connection was attached to at the last wait, so a detach/re-attach
/// re-anchors on the new corpus's signal instead of sleeping on a stale
/// stamp.
pub struct IngestCursor {
    corpus: Option<Arc<ServedCorpus>>,
    seen: u64,
}

/// One client's view of the service. The transport owns exactly one per
/// connection and must call [`close`](Connection::close) (or drop) when
/// the peer goes away: that releases the session slot and the watch
/// handles, whose registry entries auto-cancel.
pub struct Connection {
    service: Arc<ProbeService>,
    state: Mutex<ConnState>,
}

impl Connection {
    /// Opens a connection against the service.
    pub fn new(service: Arc<ProbeService>) -> Self {
        Connection {
            service,
            state: Mutex::new(ConnState {
                session: None,
                watches: Vec::new(),
                next_watch_id: 0,
            }),
        }
    }

    /// The service this connection serves.
    pub fn service(&self) -> &Arc<ProbeService> {
        &self.service
    }

    /// Handles one request, returning the response plus any event
    /// frames it produced.
    pub fn handle(&self, request: Request) -> Interaction {
        match request {
            Request::Publish {
                name,
                measure,
                records,
                cfg,
            } => self.handle_publish(name, measure, records, cfg),
            Request::Attach {
                fingerprint,
                pinned,
                declared_measure,
            } => self.handle_attach(&fingerprint, pinned, declared_measure),
            Request::Probe { threshold } => self.handle_probe(threshold),
            Request::Ingest { records } => self.handle_ingest(&records),
            Request::Watch { threshold } => self.handle_watch(threshold),
            Request::Unwatch { watch_id } => self.handle_unwatch(watch_id),
            Request::MemoryStats => self.handle_memory_stats(),
            Request::Health => {
                let status = if self.service.draining() {
                    "draining"
                } else {
                    "ok"
                };
                Interaction::reply(Response::Health {
                    status: status.to_string(),
                    corpora: self.service.corpora.read().expect("corpora lock").len(),
                    sessions: self.service.session_count(),
                    watches: self.service.watch_count(),
                })
            }
            Request::Ready => Interaction::reply(Response::Ready {
                ready: !self.service.draining(),
            }),
            Request::Detach => {
                self.release_session();
                Interaction::reply(Response::Detached)
            }
            Request::Shutdown => {
                self.service.begin_drain();
                Interaction::reply(Response::ShuttingDown)
            }
        }
    }

    fn handle_publish(
        &self,
        name: String,
        measure: Similarity,
        records: Vec<plasma_data::vector::SparseVector>,
        publish_cfg: PublishCfg,
    ) -> Interaction {
        if self.service.draining() {
            return Interaction::error(ErrorCode::Draining, "server is draining");
        }
        let cfg = publish_cfg.to_apss_config();
        let fp_raw = CacheRegistry::fingerprint(&records, measure, &cfg);
        let fp = fingerprint_hex(fp_raw);
        let mut corpora = self.service.corpora.write().expect("corpora lock");
        if let Some(existing) = corpora.get(&fp) {
            // Idempotent re-publish: answer with the corpus as it stands
            // (it may have grown since the original publish, or been
            // recovered warm from the data directory at boot).
            let master = existing.master.lock().expect("master lock");
            return Interaction::reply(Response::Published {
                fingerprint: fp.clone(),
                records: master.len(),
                epoch: master.epoch(),
            });
        }
        let built = catch_engine(|| {
            let cache = self.service.registry.get_or_build(&records, measure, &cfg);
            StreamingSession::from_records(records, measure, cfg).with_shared_cache(cache)
        });
        match built {
            Ok(master) => {
                // Persist before serving: with a data directory, a corpus
                // that cannot reach disk is refused loudly rather than
                // served volatile.
                let store = match self.open_corpus_store(
                    &fp,
                    fp_raw,
                    &name,
                    measure,
                    &publish_cfg,
                    &master,
                ) {
                    Ok(store) => store,
                    Err(msg) => {
                        return Interaction::error(
                            ErrorCode::EnginePanic,
                            format!("cannot persist corpus: {msg}"),
                        )
                    }
                };
                let response = Response::Published {
                    fingerprint: fp.clone(),
                    records: master.len(),
                    epoch: master.epoch(),
                };
                corpora.insert(
                    fp,
                    Arc::new(ServedCorpus::new(name, measure, cfg, master, store)),
                );
                Interaction::reply(response)
            }
            Err(msg) => Interaction::error(ErrorCode::EnginePanic, msg),
        }
    }

    /// Creates (or re-opens) the corpus directory and writes the
    /// publish-time metadata and epoch-0 snapshot; `None` when the
    /// service is volatile.
    fn open_corpus_store(
        &self,
        fp_hex: &str,
        fp: u128,
        name: &str,
        measure: Similarity,
        publish_cfg: &PublishCfg,
        master: &StreamingSession,
    ) -> Result<Option<CorpusStore>, String> {
        let Some(data_dir) = &self.service.data_dir else {
            return Ok(None);
        };
        let dir = data_dir.join(fp_hex);
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let meta = CorpusMeta {
            name: name.to_string(),
            measure,
            cfg: publish_cfg.clone(),
        };
        persist::write_meta(&dir, &meta).map_err(|e| e.to_string())?;
        let store = CorpusStore::open(&dir, fp).map_err(|e| e.to_string())?;
        let (records, sketches, _epoch) = master
            .persist_view()
            .ok_or("published corpus has no cache")?;
        store
            .write_snapshot(&records, &sketches)
            .map_err(|e| e.to_string())?;
        Ok(Some(store))
    }

    fn handle_attach(
        &self,
        fingerprint: &str,
        pinned: bool,
        declared_measure: Option<Similarity>,
    ) -> Interaction {
        if self.service.draining() {
            return Interaction::error(ErrorCode::Draining, "server is draining");
        }
        if fingerprint_parse(fingerprint).is_none() {
            return Interaction::error(
                ErrorCode::BadRequest,
                "'fingerprint' must be 32 hex digits",
            );
        }
        let mut state = self.state.lock().expect("connection state lock");
        if state.session.is_some() {
            return Interaction::error(
                ErrorCode::AlreadyAttached,
                "this connection already holds a session; detach first",
            );
        }
        let Some(corpus) = self.service.corpus(fingerprint) else {
            return Interaction::error(
                ErrorCode::UnknownFingerprint,
                format!("no published corpus has fingerprint {fingerprint}"),
            );
        };
        if !pinned {
            if let Some(declared) = declared_measure {
                if declared != corpus.measure {
                    return Interaction::error(
                        ErrorCode::BadRequest,
                        format!(
                            "corpus '{}' was published with a different measure",
                            corpus.name
                        ),
                    );
                }
            }
            let master = corpus.master.lock().expect("master lock");
            let session = master.fork();
            let (records, epoch) = (master.len(), master.epoch());
            drop(master);
            state.session = Some(SessionKind::Stream {
                session,
                corpus: corpus.clone(),
            });
            self.service.active_sessions.fetch_add(1, Ordering::SeqCst);
            return Interaction::reply(Response::Attached {
                fingerprint: fingerprint.to_string(),
                pinned: false,
                records,
                epoch,
            });
        }
        // Pinned: snapshot the corpus and open a batch session over the
        // shared cache. The declared measure (defaulting to the corpus's)
        // flows into the session so the engine's hash-family guard fires
        // on a mismatch — surfaced as a structured error, not a crash.
        let measure = declared_measure.unwrap_or(corpus.measure);
        let mut last_err = String::new();
        // A concurrent ingest can land between the snapshot and the
        // cache-length assertion; retry against the fresh epoch.
        for _ in 0..3 {
            let master = corpus.master.lock().expect("master lock");
            let snapshot = master.records_snapshot();
            let cache = master.shared_cache().expect("published corpus has a cache");
            let epoch = master.epoch();
            drop(master);
            let records = snapshot.len();
            let built = catch_engine(|| {
                Session::from_records(snapshot, measure, corpus.cfg).with_shared_cache(cache)
            });
            match built {
                Ok(session) => {
                    state.session = Some(SessionKind::Pinned { session });
                    self.service.active_sessions.fetch_add(1, Ordering::SeqCst);
                    return Interaction::reply(Response::Attached {
                        fingerprint: fingerprint.to_string(),
                        pinned: true,
                        records,
                        epoch,
                    });
                }
                Err(msg) => {
                    let raced = msg.contains("shared cache sketches") && measure == corpus.measure;
                    last_err = msg;
                    if !raced {
                        break;
                    }
                }
            }
        }
        Interaction::error(ErrorCode::EnginePanic, last_err)
    }

    fn handle_probe(&self, threshold: f64) -> Interaction {
        let mut state = self.state.lock().expect("connection state lock");
        match state.session.as_mut() {
            None => Interaction::error(ErrorCode::NoSession, "attach to a corpus first"),
            Some(SessionKind::Stream { session, .. }) => {
                // The probe pins one consistent epoch internally, but the
                // session can only report its epoch after the pin is
                // released — a concurrent ingest in that gap would mislabel
                // the frame. Epoch-stable across the probe ⇒ that is the
                // epoch the probe saw; retry the rare races.
                match catch_engine(AssertUnwindSafe(|| {
                    for _ in 0..16 {
                        let before = session.epoch();
                        let report = session.probe(threshold);
                        if session.epoch() == before {
                            return (report, before);
                        }
                    }
                    let report = session.probe(threshold);
                    let epoch = session.epoch();
                    (report, epoch)
                })) {
                    Ok((report, epoch)) => Interaction::reply(Response::from_probe(&report, epoch)),
                    Err(msg) => Interaction::error(classify_panic(&msg), msg),
                }
            }
            Some(SessionKind::Pinned { session, .. }) => {
                let epoch = session
                    .shared_cache()
                    .map(|c| c.epoch())
                    .unwrap_or_default();
                match catch_engine(AssertUnwindSafe(|| session.probe(threshold))) {
                    Ok(report) => Interaction::reply(Response::from_probe(&report, epoch)),
                    Err(msg) => Interaction::error(classify_panic(&msg), msg),
                }
            }
        }
    }

    fn handle_ingest(&self, records: &[plasma_data::vector::SparseVector]) -> Interaction {
        let mut state = self.state.lock().expect("connection state lock");
        match state.session.as_mut() {
            None => Interaction::error(ErrorCode::NoSession, "attach to a corpus first"),
            Some(SessionKind::Pinned { .. }) => Interaction::error(
                ErrorCode::BadRequest,
                "pinned sessions are probe-only; attach with pinned=false to ingest",
            ),
            Some(SessionKind::Stream { session, corpus }) => {
                let corpus = corpus.clone();
                // Engine-mutate + WAL-append is one atomic unit versus
                // the snapshotter (lock order persist → engine), so a
                // snapshot can never capture the in-memory half of an
                // ingest whose log entry hasn't landed.
                let persist = corpus.persist.lock().expect("persist lock");
                let report = match catch_engine(AssertUnwindSafe(|| session.ingest(records))) {
                    Ok(report) => report,
                    Err(msg) => return Interaction::error(classify_panic(&msg), msg),
                };
                let mut mark = None;
                if report.records_added > 0 {
                    if let Some(store) = &corpus.store {
                        // Log *before* acking: every acked batch
                        // survives a crash. On failure the batch is in
                        // memory but unacked — the client must treat it
                        // as lost, and the error says a restart will
                        // drop it.
                        let start = report.total_records - report.records_added;
                        match store.log_ingest(report.epoch, start, records) {
                            Ok(m) => mark = Some(m),
                            Err(e) => {
                                return Interaction::error(
                                    ErrorCode::EnginePanic,
                                    format!(
                                        "ingest adopted in memory but its WAL append \
                                         failed (a restart will lose it): {e}"
                                    ),
                                );
                            }
                        }
                    }
                }
                // The log entry is in; the covering fsync needs no
                // snapshotter exclusion. Waiting *outside* the persist
                // lock lets concurrent ingests on this corpus
                // group-commit into one sync (or be subsumed by a
                // snapshot truncation) instead of serializing fsyncs.
                drop(persist);
                if let (Some(mark), Some(store)) = (mark, &corpus.store) {
                    if let Err(e) = store.wait_durable(mark) {
                        return Interaction::error(
                            ErrorCode::EnginePanic,
                            format!(
                                "ingest adopted in memory but its WAL sync \
                                 failed (a restart may lose it): {e}"
                            ),
                        );
                    }
                }
                let response = Response::Ingested {
                    records_added: report.records_added,
                    total_records: report.total_records,
                    epoch: report.epoch,
                    carried_memos: report.carried_memos,
                };
                // Our own watches drain synchronously — the deltas ride
                // right behind the receipt, in registration order,
                // making the frame sequence deterministic for traces.
                // Other connections' pushers on *this corpus* are then
                // woken to drain theirs.
                let events = drain_watches(&mut state);
                if report.records_added > 0 {
                    corpus.signal.bump();
                }
                Interaction { response, events }
            }
        }
    }

    fn handle_watch(&self, threshold: f64) -> Interaction {
        let mut state = self.state.lock().expect("connection state lock");
        match state.session.as_mut() {
            None => Interaction::error(ErrorCode::NoSession, "attach to a corpus first"),
            Some(SessionKind::Pinned { .. }) => Interaction::error(
                ErrorCode::BadRequest,
                "pinned sessions are probe-only; attach with pinned=false to watch",
            ),
            Some(SessionKind::Stream { session, .. }) => {
                match catch_engine(AssertUnwindSafe(|| session.watch(threshold))) {
                    Ok(handle) => {
                        let watch_id = state.next_watch_id;
                        state.next_watch_id += 1;
                        state.watches.push((watch_id, handle));
                        // The registration delta (the full answer at the
                        // current epoch) is already queued; deliver it
                        // right behind the ack.
                        let events = drain_watches(&mut state);
                        Interaction {
                            response: Response::WatchAck {
                                watch_id,
                                threshold,
                            },
                            events,
                        }
                    }
                    Err(msg) => Interaction::error(classify_panic(&msg), msg),
                }
            }
        }
    }

    fn handle_unwatch(&self, watch_id: u64) -> Interaction {
        let mut state = self.state.lock().expect("connection state lock");
        if state.session.is_none() {
            return Interaction::error(ErrorCode::NoSession, "attach to a corpus first");
        }
        match state.watches.iter().position(|(id, _)| *id == watch_id) {
            Some(idx) => {
                // Dropping the handle auto-cancels its registry entry;
                // queued-but-undelivered deltas die with it.
                state.watches.remove(idx);
                Interaction::reply(Response::Unwatched { watch_id })
            }
            None => Interaction::error(
                ErrorCode::UnknownWatch,
                format!("this connection has no watch with id {watch_id}"),
            ),
        }
    }

    fn handle_memory_stats(&self) -> Interaction {
        let state = self.state.lock().expect("connection state lock");
        let (scope, stats) = match &state.session {
            Some(kind) => {
                let cache = match kind {
                    SessionKind::Stream { session, .. } => session.shared_cache(),
                    SessionKind::Pinned { session, .. } => session.shared_cache(),
                };
                match cache {
                    Some(cache) => ("corpus", vec![cache]),
                    None => ("corpus", Vec::new()),
                }
            }
            None => {
                let corpora = self.service.corpora.read().expect("corpora lock");
                let caches: Vec<Arc<SharedKnowledgeCache>> = corpora
                    .values()
                    .filter_map(|c| c.master.lock().expect("master lock").shared_cache())
                    .collect();
                ("registry", caches)
            }
        };
        let mut response = Response::MemoryStatsResult {
            scope: scope.to_string(),
            entries: 0,
            memo_bytes: 0,
            sketch_bytes: 0,
            bucket_cache_bytes: 0,
            bucket_build_records: 0,
            capacity_bytes: None,
            evicted_entries: 0,
            cache_hits: 0,
        };
        if let Response::MemoryStatsResult {
            entries,
            memo_bytes,
            sketch_bytes,
            bucket_cache_bytes,
            bucket_build_records,
            capacity_bytes,
            evicted_entries,
            cache_hits,
            ..
        } = &mut response
        {
            for cache in stats {
                let s = cache.memory_stats();
                *entries += s.entries;
                *memo_bytes += s.memo_bytes;
                *sketch_bytes += s.sketch_bytes;
                *bucket_cache_bytes += s.bucket_cache_bytes;
                *bucket_build_records += s.bucket_build_records;
                *capacity_bytes = match (*capacity_bytes, s.capacity_bytes) {
                    (Some(a), Some(b)) => Some(a + b),
                    (a, b) => a.or(b),
                };
                *evicted_entries += s.evicted_entries;
                *cache_hits += s.cache_hits;
            }
        }
        Interaction::reply(response)
    }

    /// A fresh cursor for [`wait_ingest_signal`](Self::wait_ingest_signal).
    pub fn ingest_cursor(&self) -> IngestCursor {
        IngestCursor {
            corpus: None,
            seen: 0,
        }
    }

    /// Blocks until the *attached* corpus adopts an ingest, the timeout
    /// lapses, or a drain begins; returns true exactly when the corpus's
    /// signal moved (a signalled wakeup, not a timeout). A connection
    /// without a streaming session sleeps out the timeout — there is
    /// nothing to watch, and no other corpus's ingests can wake it. The
    /// cursor re-anchors itself when the connection switches corpora
    /// (detach/re-attach), returning true once so the caller drains
    /// anything queued in the gap.
    pub fn wait_ingest_signal(&self, cursor: &mut IngestCursor, timeout: Duration) -> bool {
        let attached: Option<Arc<ServedCorpus>> = {
            let state = self.state.lock().expect("connection state lock");
            match &state.session {
                Some(SessionKind::Stream { corpus, .. }) => Some(corpus.clone()),
                _ => None,
            }
        };
        let Some(corpus) = attached else {
            cursor.corpus = None;
            if !self.service.draining() {
                std::thread::sleep(timeout);
            }
            return false;
        };
        let rebase = match &cursor.corpus {
            Some(held) => !Arc::ptr_eq(held, &corpus),
            None => true,
        };
        if rebase {
            cursor.seen = corpus.signal.stamp();
            cursor.corpus = Some(corpus);
            return true;
        }
        let (stamp, woken) = corpus
            .signal
            .wait(cursor.seen, timeout, || self.service.draining());
        cursor.seen = stamp;
        woken
    }

    /// Event frames other connections' ingests have queued on this
    /// connection's watches, in watch-registration order. The transport's
    /// pusher calls this when the attached corpus's ingest signal fires.
    pub fn drain_watch_frames(&self) -> Vec<Response> {
        let mut state = self.state.lock().expect("connection state lock");
        drain_watches(&mut state)
    }

    /// Live watches on this connection.
    pub fn watch_count(&self) -> usize {
        self.state
            .lock()
            .expect("connection state lock")
            .watches
            .len()
    }

    /// Drops the session and every watch (auto-cancelling their registry
    /// entries). Idempotent; called by the transport on peer disconnect.
    pub fn close(&self) {
        self.release_session();
    }

    fn release_session(&self) {
        let mut state = self.state.lock().expect("connection state lock");
        state.watches.clear();
        if state.session.take().is_some() {
            self.service.active_sessions.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

fn drain_watches(state: &mut ConnState) -> Vec<Response> {
    let mut events = Vec::new();
    for (watch_id, handle) in &state.watches {
        for delta in handle.drain() {
            events.push(Response::WatchDeltaEvent {
                watch_id: *watch_id,
                delta,
            });
        }
    }
    events
}

/// Maps an engine panic message to the protocol error code.
fn classify_panic(message: &str) -> ErrorCode {
    if message.contains("re-sync the corpus") || message.contains("stale prefix") {
        ErrorCode::StaleSession
    } else {
        ErrorCode::EnginePanic
    }
}

thread_local! {
    /// True while this thread runs an engine call under [`catch_engine`];
    /// the shield hook swallows panic output for exactly that window.
    static CAPTURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static SHIELD: Once = Once::new();

fn install_shield() {
    SHIELD.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(|c| c.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs an engine call, converting a panic into its message. Guards
/// (mutexes) must be acquired *outside* the closure so an unwinding
/// engine call cannot poison them.
fn catch_engine<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_shield();
    CAPTURING.with(|c| c.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(false));
    result.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "engine panicked with a non-string payload".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PublishCfg;
    use plasma_data::vector::SparseVector;

    fn corpus(n: usize) -> Vec<SparseVector> {
        (0..n)
            .map(|i| {
                SparseVector::from_pairs(vec![
                    ((i % 7) as u32, 1.0),
                    ((i % 5 + 10) as u32, 0.5),
                    ((i % 3 + 20) as u32, 2.0),
                ])
            })
            .collect()
    }

    fn publish(conn: &Connection, n: usize) -> String {
        let outcome = conn.handle(Request::Publish {
            name: "t".into(),
            measure: Similarity::Jaccard,
            records: corpus(n),
            cfg: PublishCfg {
                parallelism: Some(1),
                ..PublishCfg::default()
            },
        });
        match outcome.response {
            Response::Published { fingerprint, .. } => fingerprint,
            other => panic!("publish failed: {}", other.encode()),
        }
    }

    #[test]
    fn publish_attach_probe_round_trip() {
        let service = Arc::new(ProbeService::new());
        let conn = Connection::new(service.clone());
        let fp = publish(&conn, 24);
        let attached = conn.handle(Request::Attach {
            fingerprint: fp.clone(),
            pinned: false,
            declared_measure: None,
        });
        assert!(matches!(attached.response, Response::Attached { .. }));
        let probed = conn.handle(Request::Probe { threshold: 0.5 });
        match probed.response {
            Response::ProbeResult { epoch, .. } => assert_eq!(epoch, 0),
            other => panic!("probe failed: {}", other.encode()),
        }
        assert_eq!(service.session_count(), 1);
        conn.close();
        assert_eq!(service.session_count(), 0);
    }

    #[test]
    fn publish_is_idempotent_by_fingerprint() {
        let service = Arc::new(ProbeService::new());
        let conn = Connection::new(service);
        let fp1 = publish(&conn, 16);
        let fp2 = publish(&conn, 16);
        assert_eq!(fp1, fp2);
        assert_eq!(
            conn.service().corpora.read().expect("corpora lock").len(),
            1
        );
    }

    #[test]
    fn stale_pinned_probe_is_a_structured_error() {
        let service = Arc::new(ProbeService::new());
        let writer = Connection::new(service.clone());
        let fp = publish(&writer, 16);
        writer.handle(Request::Attach {
            fingerprint: fp.clone(),
            pinned: false,
            declared_measure: None,
        });
        let reader = Connection::new(service);
        reader.handle(Request::Attach {
            fingerprint: fp,
            pinned: true,
            declared_measure: None,
        });
        // Grow the corpus under the pinned reader.
        writer.handle(Request::Ingest { records: corpus(4) });
        let outcome = reader.handle(Request::Probe { threshold: 0.5 });
        match outcome.response {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::StaleSession),
            other => panic!("expected stale_session, got {}", other.encode()),
        }
        // The connection survives and can re-attach.
        reader.handle(Request::Detach);
        let again = reader.handle(Request::Probe { threshold: 0.5 });
        match again.response {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSession),
            other => panic!("expected no_session, got {}", other.encode()),
        }
    }

    #[test]
    fn measure_mismatch_surfaces_engine_guard() {
        let service = Arc::new(ProbeService::new());
        let conn = Connection::new(service);
        let fp = publish(&conn, 12);
        let outcome = conn.handle(Request::Attach {
            fingerprint: fp,
            pinned: true,
            declared_measure: Some(Similarity::Cosine),
        });
        match outcome.response {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::EnginePanic);
                assert!(message.contains("hash family"), "{message}");
            }
            other => panic!("expected engine_panic, got {}", other.encode()),
        }
    }

    #[test]
    fn unwatch_cancels_delivery_and_unknown_ids_are_structured() {
        let service = Arc::new(ProbeService::new());
        let lone = Connection::new(service.clone());
        match lone.handle(Request::Unwatch { watch_id: 0 }).response {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSession),
            other => panic!("expected no_session, got {}", other.encode()),
        }
        let conn = Connection::new(service);
        let fp = publish(&conn, 20);
        conn.handle(Request::Attach {
            fingerprint: fp,
            pinned: false,
            declared_measure: None,
        });
        let watched = conn.handle(Request::Watch { threshold: 0.5 });
        assert!(matches!(
            watched.response,
            Response::WatchAck { watch_id: 0, .. }
        ));
        match conn.handle(Request::Unwatch { watch_id: 7 }).response {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::UnknownWatch);
                assert!(message.contains('7'), "{message}");
            }
            other => panic!("expected unknown_watch, got {}", other.encode()),
        }
        assert_eq!(conn.watch_count(), 1, "failed unwatch cancels nothing");
        let ok = conn.handle(Request::Unwatch { watch_id: 0 });
        assert!(matches!(ok.response, Response::Unwatched { watch_id: 0 }));
        assert_eq!(conn.watch_count(), 0);
        // The watch is gone end to end: an ingest that would have
        // produced a delta produces no event frames.
        let ingested = conn.handle(Request::Ingest { records: corpus(6) });
        assert!(matches!(ingested.response, Response::Ingested { .. }));
        assert!(ingested.events.is_empty(), "cancelled watch still fired");
        // Unwatching the same id again is the structured error.
        match conn.handle(Request::Unwatch { watch_id: 0 }).response {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownWatch),
            other => panic!("expected unknown_watch, got {}", other.encode()),
        }
        // Ids are not reused: the next watch gets a fresh id.
        let again = conn.handle(Request::Watch { threshold: 0.6 });
        assert!(matches!(
            again.response,
            Response::WatchAck { watch_id: 1, .. }
        ));
    }

    #[test]
    fn ingest_signal_is_per_corpus_not_global() {
        let service = Arc::new(ProbeService::new());
        let conn_a = Connection::new(service.clone());
        let fp_a = publish(&conn_a, 16);
        conn_a.handle(Request::Attach {
            fingerprint: fp_a.clone(),
            pinned: false,
            declared_measure: None,
        });
        let conn_b = Connection::new(service.clone());
        let fp_b = publish(&conn_b, 24);
        assert_ne!(fp_a, fp_b, "distinct corpora");
        conn_b.handle(Request::Attach {
            fingerprint: fp_b,
            pinned: false,
            declared_measure: None,
        });
        let mut cursor = conn_a.ingest_cursor();
        // The first wait anchors the cursor on corpus A (returns true by
        // contract so the pusher drains the attach gap).
        assert!(conn_a.wait_ingest_signal(&mut cursor, Duration::from_millis(1)));
        let corpus_a = service.corpus(&fp_a).expect("corpus A");
        let baseline = corpus_a.signal.wakeups.load(Ordering::Relaxed);
        // An ingest into corpus B must NOT wake a pusher on corpus A —
        // this was the global-signal bug.
        let ingested = conn_b.handle(Request::Ingest { records: corpus(4) });
        assert!(matches!(ingested.response, Response::Ingested { .. }));
        assert!(
            !conn_a.wait_ingest_signal(&mut cursor, Duration::from_millis(25)),
            "corpus B's ingest woke corpus A's pusher"
        );
        assert_eq!(
            corpus_a.signal.wakeups.load(Ordering::Relaxed),
            baseline,
            "corpus A recorded a signalled wakeup it should not have"
        );
        // An ingest into corpus A itself does wake it, exactly once.
        conn_a.handle(Request::Ingest { records: corpus(5) });
        assert!(conn_a.wait_ingest_signal(&mut cursor, Duration::from_secs(5)));
        assert_eq!(
            corpus_a.signal.wakeups.load(Ordering::Relaxed),
            baseline + 1
        );
        // Caught up: the next wait times out quietly.
        assert!(!conn_a.wait_ingest_signal(&mut cursor, Duration::from_millis(5)));
    }

    #[test]
    fn own_ingest_drains_watch_deltas_synchronously() {
        let service = Arc::new(ProbeService::new());
        let conn = Connection::new(service);
        let fp = publish(&conn, 20);
        conn.handle(Request::Attach {
            fingerprint: fp,
            pinned: false,
            declared_measure: None,
        });
        let watched = conn.handle(Request::Watch { threshold: 0.5 });
        assert!(matches!(
            watched.response,
            Response::WatchAck { watch_id: 0, .. }
        ));
        assert_eq!(watched.events.len(), 1, "registration delta rides the ack");
        let ingested = conn.handle(Request::Ingest { records: corpus(6) });
        assert!(matches!(ingested.response, Response::Ingested { .. }));
        assert_eq!(ingested.events.len(), 1, "own ingest drains own watches");
        match &ingested.events[0] {
            Response::WatchDeltaEvent { watch_id, delta } => {
                assert_eq!(*watch_id, 0);
                assert_eq!(delta.epoch, 1);
            }
            other => panic!("expected watch delta, got {}", other.encode()),
        }
    }
}
