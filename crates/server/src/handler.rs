//! The transport-agnostic serving core: `Request -> Response` dispatch.
//!
//! Nothing in this module touches a socket. A [`ProbeService`] holds the
//! published corpora (each a [`plasma_core::StreamingSession`] master
//! multiplexed onto one [`SharedKnowledgeCache`]); a [`Connection`] is
//! one client's view — at most one attached session plus its watches —
//! and [`Connection::handle`] maps each decoded [`Request`] to an
//! [`Interaction`]: one response frame plus any event frames the request
//! produced. The TCP layer ([`crate::server`]), the trace recorder
//! ([`crate::trace`]), and any future framing all drive this same entry
//! point, which is what makes recorded traces replayable across
//! transports.
//!
//! # Panic → error boundary
//!
//! The engine guards invariants with panics: probing a grown cache from
//! a stale pinned snapshot, attaching across hash families, seed
//! mismatches. A server must outlive all of them, so every engine call
//! sits behind the crate-private `catch_engine`: the panic is caught at the handler
//! boundary, its message is mapped to a structured [`ErrorCode`]
//! (`stale_session` for the stale-prefix guard, `engine_panic`
//! otherwise), and the connection keeps serving. A thread-local shield
//! suppresses the default panic hook's stderr spew for these *expected*
//! panics while leaving genuine bugs loud.
//!
//! # Determinism
//!
//! Everything a response carries is deterministic for a given operation
//! history (timing fields never cross the protocol boundary), and watch
//! deltas produced by a connection's own ingest are drained
//! synchronously inside [`Connection::handle`] — so a sequential script
//! against a fresh service produces one exact frame sequence, which the
//! trace harness pins bit-for-bit against direct library calls.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, RwLock};
use std::time::Duration;

use plasma_core::{ApssConfig, CacheRegistry, Session, SharedKnowledgeCache, StreamingSession};
use plasma_data::similarity::Similarity;

use crate::protocol::{fingerprint_hex, fingerprint_parse, ErrorCode, Request, Response};

/// One handled request: the response frame plus any event frames it
/// produced (watch registration answers, own-ingest deltas), in delivery
/// order.
#[derive(Debug)]
pub struct Interaction {
    /// The reply to the request.
    pub response: Response,
    /// Event frames to push after the reply, in order.
    pub events: Vec<Response>,
}

impl Interaction {
    fn reply(response: Response) -> Self {
        Interaction {
            response,
            events: Vec::new(),
        }
    }

    fn error(code: ErrorCode, message: impl Into<String>) -> Self {
        Interaction::reply(Response::Error {
            code,
            message: message.into(),
        })
    }
}

/// One published corpus: a master streaming session whose forks serve
/// every attached connection, all sharing one knowledge cache and one
/// watch registry.
struct ServedCorpus {
    name: String,
    measure: Similarity,
    cfg: ApssConfig,
    /// Forked per attach; also the corpus-wide watch/epoch vantage
    /// point. The mutex guards only fork/inspect — probes and ingests
    /// run on the forks, serialized by the corpus's own record lock.
    master: Mutex<StreamingSession>,
}

/// The shared serving state: published corpora over one cache registry.
pub struct ProbeService {
    registry: CacheRegistry,
    corpora: RwLock<BTreeMap<String, Arc<ServedCorpus>>>,
    /// Bumped (and broadcast) after every adopted ingest; connection
    /// pusher threads wait on it to deliver cross-connection watch
    /// deltas promptly.
    ingest_signal: (Mutex<u64>, Condvar),
    active_sessions: AtomicUsize,
    draining: AtomicBool,
}

impl Default for ProbeService {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeService {
    /// An empty service.
    pub fn new() -> Self {
        ProbeService {
            registry: CacheRegistry::new(),
            corpora: RwLock::new(BTreeMap::new()),
            ingest_signal: (Mutex::new(0), Condvar::new()),
            active_sessions: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// True once a drain was requested; the transport stops accepting
    /// and the handler refuses new publishes/attaches.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests a drain and wakes every ingest-signal waiter so pusher
    /// threads can observe the flag.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.bump_ingest_signal();
    }

    /// The current ingest-signal stamp; pass to
    /// [`wait_ingest_signal`](Self::wait_ingest_signal).
    pub fn ingest_stamp(&self) -> u64 {
        *self.ingest_signal.0.lock().expect("ingest signal lock")
    }

    /// Blocks until the stamp moves past `seen`, the timeout lapses, or
    /// a drain begins; returns the current stamp.
    pub fn wait_ingest_signal(&self, seen: u64, timeout: Duration) -> u64 {
        let (lock, cvar) = &self.ingest_signal;
        let guard = lock.lock().expect("ingest signal lock");
        let (guard, _) = cvar
            .wait_timeout_while(guard, timeout, |stamp| *stamp == seen && !self.draining())
            .expect("ingest signal lock");
        *guard
    }

    fn bump_ingest_signal(&self) {
        let (lock, cvar) = &self.ingest_signal;
        *lock.lock().expect("ingest signal lock") += 1;
        cvar.notify_all();
    }

    fn corpus(&self, fingerprint: &str) -> Option<Arc<ServedCorpus>> {
        self.corpora
            .read()
            .expect("corpora lock")
            .get(fingerprint)
            .cloned()
    }

    /// Live attached sessions across all connections.
    pub fn session_count(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Live watches across all corpora.
    pub fn watch_count(&self) -> usize {
        let corpora = self.corpora.read().expect("corpora lock");
        corpora
            .values()
            .map(|c| c.master.lock().expect("master lock").watch_count())
            .sum()
    }
}

/// Session state of one connection.
enum SessionKind {
    /// A fork of the corpus master: may probe, ingest, and watch. The
    /// fork shares the corpus records, cache, and watch registry, so the
    /// session alone keeps the served state alive.
    Stream { session: StreamingSession },
    /// A probe-only snapshot of the corpus at attach time; goes stale
    /// (structured `stale_session` error) once the corpus grows.
    Pinned { session: Session },
}

struct ConnState {
    session: Option<SessionKind>,
    /// Live watches in registration order, keyed by the
    /// connection-scoped id echoed on delta frames.
    watches: Vec<(u64, plasma_core::WatchHandle)>,
    next_watch_id: u64,
}

/// One client's view of the service. The transport owns exactly one per
/// connection and must call [`close`](Connection::close) (or drop) when
/// the peer goes away: that releases the session slot and the watch
/// handles, whose registry entries auto-cancel.
pub struct Connection {
    service: Arc<ProbeService>,
    state: Mutex<ConnState>,
}

impl Connection {
    /// Opens a connection against the service.
    pub fn new(service: Arc<ProbeService>) -> Self {
        Connection {
            service,
            state: Mutex::new(ConnState {
                session: None,
                watches: Vec::new(),
                next_watch_id: 0,
            }),
        }
    }

    /// The service this connection serves.
    pub fn service(&self) -> &Arc<ProbeService> {
        &self.service
    }

    /// Handles one request, returning the response plus any event
    /// frames it produced.
    pub fn handle(&self, request: Request) -> Interaction {
        match request {
            Request::Publish {
                name,
                measure,
                records,
                cfg,
            } => self.handle_publish(name, measure, records, cfg.to_apss_config()),
            Request::Attach {
                fingerprint,
                pinned,
                declared_measure,
            } => self.handle_attach(&fingerprint, pinned, declared_measure),
            Request::Probe { threshold } => self.handle_probe(threshold),
            Request::Ingest { records } => self.handle_ingest(&records),
            Request::Watch { threshold } => self.handle_watch(threshold),
            Request::MemoryStats => self.handle_memory_stats(),
            Request::Health => {
                let status = if self.service.draining() {
                    "draining"
                } else {
                    "ok"
                };
                Interaction::reply(Response::Health {
                    status: status.to_string(),
                    corpora: self.service.corpora.read().expect("corpora lock").len(),
                    sessions: self.service.session_count(),
                    watches: self.service.watch_count(),
                })
            }
            Request::Ready => Interaction::reply(Response::Ready {
                ready: !self.service.draining(),
            }),
            Request::Detach => {
                self.release_session();
                Interaction::reply(Response::Detached)
            }
            Request::Shutdown => {
                self.service.begin_drain();
                Interaction::reply(Response::ShuttingDown)
            }
        }
    }

    fn handle_publish(
        &self,
        name: String,
        measure: Similarity,
        records: Vec<plasma_data::vector::SparseVector>,
        cfg: ApssConfig,
    ) -> Interaction {
        if self.service.draining() {
            return Interaction::error(ErrorCode::Draining, "server is draining");
        }
        let fp = fingerprint_hex(CacheRegistry::fingerprint(&records, measure, &cfg));
        let mut corpora = self.service.corpora.write().expect("corpora lock");
        if let Some(existing) = corpora.get(&fp) {
            // Idempotent re-publish: answer with the corpus as it stands
            // (it may have grown since the original publish).
            let master = existing.master.lock().expect("master lock");
            return Interaction::reply(Response::Published {
                fingerprint: fp.clone(),
                records: master.len(),
                epoch: master.epoch(),
            });
        }
        let built = catch_engine(|| {
            let cache = self.service.registry.get_or_build(&records, measure, &cfg);
            StreamingSession::from_records(records, measure, cfg).with_shared_cache(cache)
        });
        match built {
            Ok(master) => {
                let response = Response::Published {
                    fingerprint: fp.clone(),
                    records: master.len(),
                    epoch: master.epoch(),
                };
                corpora.insert(
                    fp,
                    Arc::new(ServedCorpus {
                        name,
                        measure,
                        cfg,
                        master: Mutex::new(master),
                    }),
                );
                Interaction::reply(response)
            }
            Err(msg) => Interaction::error(ErrorCode::EnginePanic, msg),
        }
    }

    fn handle_attach(
        &self,
        fingerprint: &str,
        pinned: bool,
        declared_measure: Option<Similarity>,
    ) -> Interaction {
        if self.service.draining() {
            return Interaction::error(ErrorCode::Draining, "server is draining");
        }
        if fingerprint_parse(fingerprint).is_none() {
            return Interaction::error(
                ErrorCode::BadRequest,
                "'fingerprint' must be 32 hex digits",
            );
        }
        let mut state = self.state.lock().expect("connection state lock");
        if state.session.is_some() {
            return Interaction::error(
                ErrorCode::AlreadyAttached,
                "this connection already holds a session; detach first",
            );
        }
        let Some(corpus) = self.service.corpus(fingerprint) else {
            return Interaction::error(
                ErrorCode::UnknownFingerprint,
                format!("no published corpus has fingerprint {fingerprint}"),
            );
        };
        if !pinned {
            if let Some(declared) = declared_measure {
                if declared != corpus.measure {
                    return Interaction::error(
                        ErrorCode::BadRequest,
                        format!(
                            "corpus '{}' was published with a different measure",
                            corpus.name
                        ),
                    );
                }
            }
            let master = corpus.master.lock().expect("master lock");
            let session = master.fork();
            let (records, epoch) = (master.len(), master.epoch());
            drop(master);
            state.session = Some(SessionKind::Stream { session });
            self.service.active_sessions.fetch_add(1, Ordering::SeqCst);
            return Interaction::reply(Response::Attached {
                fingerprint: fingerprint.to_string(),
                pinned: false,
                records,
                epoch,
            });
        }
        // Pinned: snapshot the corpus and open a batch session over the
        // shared cache. The declared measure (defaulting to the corpus's)
        // flows into the session so the engine's hash-family guard fires
        // on a mismatch — surfaced as a structured error, not a crash.
        let measure = declared_measure.unwrap_or(corpus.measure);
        let mut last_err = String::new();
        // A concurrent ingest can land between the snapshot and the
        // cache-length assertion; retry against the fresh epoch.
        for _ in 0..3 {
            let master = corpus.master.lock().expect("master lock");
            let snapshot = master.records_snapshot();
            let cache = master.shared_cache().expect("published corpus has a cache");
            let epoch = master.epoch();
            drop(master);
            let records = snapshot.len();
            let built = catch_engine(|| {
                Session::from_records(snapshot, measure, corpus.cfg).with_shared_cache(cache)
            });
            match built {
                Ok(session) => {
                    state.session = Some(SessionKind::Pinned { session });
                    self.service.active_sessions.fetch_add(1, Ordering::SeqCst);
                    return Interaction::reply(Response::Attached {
                        fingerprint: fingerprint.to_string(),
                        pinned: true,
                        records,
                        epoch,
                    });
                }
                Err(msg) => {
                    let raced = msg.contains("shared cache sketches") && measure == corpus.measure;
                    last_err = msg;
                    if !raced {
                        break;
                    }
                }
            }
        }
        Interaction::error(ErrorCode::EnginePanic, last_err)
    }

    fn handle_probe(&self, threshold: f64) -> Interaction {
        let mut state = self.state.lock().expect("connection state lock");
        match state.session.as_mut() {
            None => Interaction::error(ErrorCode::NoSession, "attach to a corpus first"),
            Some(SessionKind::Stream { session, .. }) => {
                // The probe pins one consistent epoch internally, but the
                // session can only report its epoch after the pin is
                // released — a concurrent ingest in that gap would mislabel
                // the frame. Epoch-stable across the probe ⇒ that is the
                // epoch the probe saw; retry the rare races.
                match catch_engine(AssertUnwindSafe(|| {
                    for _ in 0..16 {
                        let before = session.epoch();
                        let report = session.probe(threshold);
                        if session.epoch() == before {
                            return (report, before);
                        }
                    }
                    let report = session.probe(threshold);
                    let epoch = session.epoch();
                    (report, epoch)
                })) {
                    Ok((report, epoch)) => Interaction::reply(Response::from_probe(&report, epoch)),
                    Err(msg) => Interaction::error(classify_panic(&msg), msg),
                }
            }
            Some(SessionKind::Pinned { session, .. }) => {
                let epoch = session
                    .shared_cache()
                    .map(|c| c.epoch())
                    .unwrap_or_default();
                match catch_engine(AssertUnwindSafe(|| session.probe(threshold))) {
                    Ok(report) => Interaction::reply(Response::from_probe(&report, epoch)),
                    Err(msg) => Interaction::error(classify_panic(&msg), msg),
                }
            }
        }
    }

    fn handle_ingest(&self, records: &[plasma_data::vector::SparseVector]) -> Interaction {
        let mut state = self.state.lock().expect("connection state lock");
        match state.session.as_mut() {
            None => Interaction::error(ErrorCode::NoSession, "attach to a corpus first"),
            Some(SessionKind::Pinned { .. }) => Interaction::error(
                ErrorCode::BadRequest,
                "pinned sessions are probe-only; attach with pinned=false to ingest",
            ),
            Some(SessionKind::Stream { session, .. }) => {
                match catch_engine(AssertUnwindSafe(|| session.ingest(records))) {
                    Ok(report) => {
                        let response = Response::Ingested {
                            records_added: report.records_added,
                            total_records: report.total_records,
                            epoch: report.epoch,
                            carried_memos: report.carried_memos,
                        };
                        // Our own watches drain synchronously — the
                        // deltas ride right behind the receipt, in
                        // registration order, making the frame sequence
                        // deterministic for traces. Other connections'
                        // pushers are then woken to drain theirs.
                        let events = drain_watches(&mut state);
                        if report.records_added > 0 {
                            self.service.bump_ingest_signal();
                        }
                        Interaction { response, events }
                    }
                    Err(msg) => Interaction::error(classify_panic(&msg), msg),
                }
            }
        }
    }

    fn handle_watch(&self, threshold: f64) -> Interaction {
        let mut state = self.state.lock().expect("connection state lock");
        match state.session.as_mut() {
            None => Interaction::error(ErrorCode::NoSession, "attach to a corpus first"),
            Some(SessionKind::Pinned { .. }) => Interaction::error(
                ErrorCode::BadRequest,
                "pinned sessions are probe-only; attach with pinned=false to watch",
            ),
            Some(SessionKind::Stream { session, .. }) => {
                match catch_engine(AssertUnwindSafe(|| session.watch(threshold))) {
                    Ok(handle) => {
                        let watch_id = state.next_watch_id;
                        state.next_watch_id += 1;
                        state.watches.push((watch_id, handle));
                        // The registration delta (the full answer at the
                        // current epoch) is already queued; deliver it
                        // right behind the ack.
                        let events = drain_watches(&mut state);
                        Interaction {
                            response: Response::WatchAck {
                                watch_id,
                                threshold,
                            },
                            events,
                        }
                    }
                    Err(msg) => Interaction::error(classify_panic(&msg), msg),
                }
            }
        }
    }

    fn handle_memory_stats(&self) -> Interaction {
        let state = self.state.lock().expect("connection state lock");
        let (scope, stats) = match &state.session {
            Some(kind) => {
                let cache = match kind {
                    SessionKind::Stream { session, .. } => session.shared_cache(),
                    SessionKind::Pinned { session, .. } => session.shared_cache(),
                };
                match cache {
                    Some(cache) => ("corpus", vec![cache]),
                    None => ("corpus", Vec::new()),
                }
            }
            None => {
                let corpora = self.service.corpora.read().expect("corpora lock");
                let caches: Vec<Arc<SharedKnowledgeCache>> = corpora
                    .values()
                    .filter_map(|c| c.master.lock().expect("master lock").shared_cache())
                    .collect();
                ("registry", caches)
            }
        };
        let mut response = Response::MemoryStatsResult {
            scope: scope.to_string(),
            entries: 0,
            memo_bytes: 0,
            sketch_bytes: 0,
            bucket_cache_bytes: 0,
            bucket_build_records: 0,
            capacity_bytes: None,
            evicted_entries: 0,
            cache_hits: 0,
        };
        if let Response::MemoryStatsResult {
            entries,
            memo_bytes,
            sketch_bytes,
            bucket_cache_bytes,
            bucket_build_records,
            capacity_bytes,
            evicted_entries,
            cache_hits,
            ..
        } = &mut response
        {
            for cache in stats {
                let s = cache.memory_stats();
                *entries += s.entries;
                *memo_bytes += s.memo_bytes;
                *sketch_bytes += s.sketch_bytes;
                *bucket_cache_bytes += s.bucket_cache_bytes;
                *bucket_build_records += s.bucket_build_records;
                *capacity_bytes = match (*capacity_bytes, s.capacity_bytes) {
                    (Some(a), Some(b)) => Some(a + b),
                    (a, b) => a.or(b),
                };
                *evicted_entries += s.evicted_entries;
                *cache_hits += s.cache_hits;
            }
        }
        Interaction::reply(response)
    }

    /// Event frames other connections' ingests have queued on this
    /// connection's watches, in watch-registration order. The transport's
    /// pusher calls this when the service's ingest signal fires.
    pub fn drain_watch_frames(&self) -> Vec<Response> {
        let mut state = self.state.lock().expect("connection state lock");
        drain_watches(&mut state)
    }

    /// Live watches on this connection.
    pub fn watch_count(&self) -> usize {
        self.state
            .lock()
            .expect("connection state lock")
            .watches
            .len()
    }

    /// Drops the session and every watch (auto-cancelling their registry
    /// entries). Idempotent; called by the transport on peer disconnect.
    pub fn close(&self) {
        self.release_session();
    }

    fn release_session(&self) {
        let mut state = self.state.lock().expect("connection state lock");
        state.watches.clear();
        if state.session.take().is_some() {
            self.service.active_sessions.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

fn drain_watches(state: &mut ConnState) -> Vec<Response> {
    let mut events = Vec::new();
    for (watch_id, handle) in &state.watches {
        for delta in handle.drain() {
            events.push(Response::WatchDeltaEvent {
                watch_id: *watch_id,
                delta,
            });
        }
    }
    events
}

/// Maps an engine panic message to the protocol error code.
fn classify_panic(message: &str) -> ErrorCode {
    if message.contains("re-sync the corpus") || message.contains("stale prefix") {
        ErrorCode::StaleSession
    } else {
        ErrorCode::EnginePanic
    }
}

thread_local! {
    /// True while this thread runs an engine call under [`catch_engine`];
    /// the shield hook swallows panic output for exactly that window.
    static CAPTURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static SHIELD: Once = Once::new();

fn install_shield() {
    SHIELD.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(|c| c.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs an engine call, converting a panic into its message. Guards
/// (mutexes) must be acquired *outside* the closure so an unwinding
/// engine call cannot poison them.
fn catch_engine<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_shield();
    CAPTURING.with(|c| c.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(false));
    result.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "engine panicked with a non-string payload".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PublishCfg;
    use plasma_data::vector::SparseVector;

    fn corpus(n: usize) -> Vec<SparseVector> {
        (0..n)
            .map(|i| {
                SparseVector::from_pairs(vec![
                    ((i % 7) as u32, 1.0),
                    ((i % 5 + 10) as u32, 0.5),
                    ((i % 3 + 20) as u32, 2.0),
                ])
            })
            .collect()
    }

    fn publish(conn: &Connection, n: usize) -> String {
        let outcome = conn.handle(Request::Publish {
            name: "t".into(),
            measure: Similarity::Jaccard,
            records: corpus(n),
            cfg: PublishCfg {
                parallelism: Some(1),
                ..PublishCfg::default()
            },
        });
        match outcome.response {
            Response::Published { fingerprint, .. } => fingerprint,
            other => panic!("publish failed: {}", other.encode()),
        }
    }

    #[test]
    fn publish_attach_probe_round_trip() {
        let service = Arc::new(ProbeService::new());
        let conn = Connection::new(service.clone());
        let fp = publish(&conn, 24);
        let attached = conn.handle(Request::Attach {
            fingerprint: fp.clone(),
            pinned: false,
            declared_measure: None,
        });
        assert!(matches!(attached.response, Response::Attached { .. }));
        let probed = conn.handle(Request::Probe { threshold: 0.5 });
        match probed.response {
            Response::ProbeResult { epoch, .. } => assert_eq!(epoch, 0),
            other => panic!("probe failed: {}", other.encode()),
        }
        assert_eq!(service.session_count(), 1);
        conn.close();
        assert_eq!(service.session_count(), 0);
    }

    #[test]
    fn publish_is_idempotent_by_fingerprint() {
        let service = Arc::new(ProbeService::new());
        let conn = Connection::new(service);
        let fp1 = publish(&conn, 16);
        let fp2 = publish(&conn, 16);
        assert_eq!(fp1, fp2);
        assert_eq!(
            conn.service().corpora.read().expect("corpora lock").len(),
            1
        );
    }

    #[test]
    fn stale_pinned_probe_is_a_structured_error() {
        let service = Arc::new(ProbeService::new());
        let writer = Connection::new(service.clone());
        let fp = publish(&writer, 16);
        writer.handle(Request::Attach {
            fingerprint: fp.clone(),
            pinned: false,
            declared_measure: None,
        });
        let reader = Connection::new(service);
        reader.handle(Request::Attach {
            fingerprint: fp,
            pinned: true,
            declared_measure: None,
        });
        // Grow the corpus under the pinned reader.
        writer.handle(Request::Ingest { records: corpus(4) });
        let outcome = reader.handle(Request::Probe { threshold: 0.5 });
        match outcome.response {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::StaleSession),
            other => panic!("expected stale_session, got {}", other.encode()),
        }
        // The connection survives and can re-attach.
        reader.handle(Request::Detach);
        let again = reader.handle(Request::Probe { threshold: 0.5 });
        match again.response {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSession),
            other => panic!("expected no_session, got {}", other.encode()),
        }
    }

    #[test]
    fn measure_mismatch_surfaces_engine_guard() {
        let service = Arc::new(ProbeService::new());
        let conn = Connection::new(service);
        let fp = publish(&conn, 12);
        let outcome = conn.handle(Request::Attach {
            fingerprint: fp,
            pinned: true,
            declared_measure: Some(Similarity::Cosine),
        });
        match outcome.response {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::EnginePanic);
                assert!(message.contains("hash family"), "{message}");
            }
            other => panic!("expected engine_panic, got {}", other.encode()),
        }
    }

    #[test]
    fn own_ingest_drains_watch_deltas_synchronously() {
        let service = Arc::new(ProbeService::new());
        let conn = Connection::new(service);
        let fp = publish(&conn, 20);
        conn.handle(Request::Attach {
            fingerprint: fp,
            pinned: false,
            declared_measure: None,
        });
        let watched = conn.handle(Request::Watch { threshold: 0.5 });
        assert!(matches!(
            watched.response,
            Response::WatchAck { watch_id: 0, .. }
        ));
        assert_eq!(watched.events.len(), 1, "registration delta rides the ack");
        let ingested = conn.handle(Request::Ingest { records: corpus(6) });
        assert!(matches!(ingested.response, Response::Ingested { .. }));
        assert_eq!(ingested.events.len(), 1, "own ingest drains own watches");
        match &ingested.events[0] {
            Response::WatchDeltaEvent { watch_id, delta } => {
                assert_eq!(*watch_id, 0);
                assert_eq!(delta.epoch, 1);
            }
            other => panic!("expected watch delta, got {}", other.encode()),
        }
    }
}
