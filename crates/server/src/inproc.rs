//! An in-process client over the handler layer: the same
//! request/response surface as [`crate::client::ProbeClient`], minus the
//! socket.
//!
//! The transport-agnostic split ([`Connection::handle`] returns an
//! [`Interaction`], never touches I/O) means a client can drive the real
//! serving stack — session lifecycle, watch registries, WAL appends,
//! registry eviction — as a plain method call. The load harness uses
//! this for its default transport: latency samples then measure the
//! serving stack itself (locks, fsyncs, evaluation) without conflating
//! socket and framing cost, and deterministic replays (fixed seed, fake
//! clock) stay deterministic because no kernel scheduling is involved.
//! Pass `--tcp` to the harness to measure the full loopback path with
//! [`crate::client::ProbeClient`] instead.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::handler::{Connection, Interaction, ProbeService};
use crate::protocol::{Request, Response};

/// A connection-level client: one [`Connection`] (one session slot, its
/// own watch table) plus a buffer of pushed event frames, mirroring how
/// [`crate::client::ProbeClient`] separates replies from events.
pub struct InProcClient {
    conn: Connection,
    events: VecDeque<Response>,
}

impl InProcClient {
    /// Opens a connection on `service`. Cheap: no thread, no socket.
    pub fn new(service: Arc<ProbeService>) -> Self {
        InProcClient {
            conn: Connection::new(service),
            events: VecDeque::new(),
        }
    }

    /// Dispatches one request through the handler and returns its direct
    /// response; any event frames it produced (watch registration
    /// answers, own-ingest deltas) are buffered for
    /// [`poll_event`](Self::poll_event) / [`take_events`](Self::take_events).
    pub fn request(&mut self, request: Request) -> Response {
        let Interaction { response, events } = self.conn.handle(request);
        self.events.extend(events);
        response
    }

    /// Removes and returns the oldest buffered event frame, if any.
    pub fn poll_event(&mut self) -> Option<Response> {
        self.events.pop_front()
    }

    /// Removes and returns every buffered event frame, oldest first.
    pub fn take_events(&mut self) -> Vec<Response> {
        self.events.drain(..).collect()
    }

    /// Buffered event frames not yet consumed.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Drains watch deltas queued by *other* connections' ingests into
    /// this connection's event buffer (a TCP connection's pusher thread
    /// does this automatically; in-process callers poll). Returns how
    /// many frames arrived.
    pub fn pump_watch_frames(&mut self) -> usize {
        let frames = self.conn.drain_watch_frames();
        let n = frames.len();
        self.events.extend(frames);
        n
    }

    /// The underlying connection, for lifecycle calls the request enum
    /// does not cover.
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    /// Closes the session (dropping any watches); the client can attach
    /// again afterwards.
    pub fn close(&self) {
        self.conn.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PublishCfg;
    use plasma_data::datasets::gaussian::GaussianSpec;
    use plasma_data::similarity::Similarity;

    fn corpus(n: usize) -> Vec<plasma_data::vector::SparseVector> {
        GaussianSpec {
            separation: 3.5,
            spread: 0.7,
            ..GaussianSpec::new("inproc", n, 6, 2)
        }
        .generate(9)
        .records
    }

    #[test]
    fn inproc_client_round_trips_the_serving_stack() {
        let service = Arc::new(ProbeService::new());
        let mut client = InProcClient::new(service);
        let all = corpus(30);
        let fp = match client.request(Request::Publish {
            name: "t".into(),
            measure: Similarity::Cosine,
            records: all[..24].to_vec(),
            cfg: PublishCfg::default(),
        }) {
            Response::Published { fingerprint, .. } => fingerprint,
            other => panic!("publish failed: {other:?}"),
        };
        assert!(matches!(
            client.request(Request::Attach {
                fingerprint: fp,
                pinned: false,
                declared_measure: None,
            }),
            Response::Attached { .. }
        ));
        assert!(matches!(
            client.request(Request::Watch { threshold: 0.7 }),
            Response::WatchAck { .. }
        ));
        // Registration pushes the full first delta as an event frame.
        assert_eq!(client.pending_events(), 1);
        let ingested = client.request(Request::Ingest {
            records: all[24..].to_vec(),
        });
        assert!(matches!(
            ingested,
            Response::Ingested {
                records_added: 6,
                ..
            }
        ));
        // The own-ingest delta rides behind the receipt.
        assert_eq!(client.pending_events(), 2);
        assert!(client
            .take_events()
            .iter()
            .all(|e| matches!(e, Response::WatchDeltaEvent { .. })));
        assert!(matches!(
            client.request(Request::Probe { threshold: 0.7 }),
            Response::ProbeResult { .. }
        ));
        assert!(matches!(
            client.request(Request::Detach),
            Response::Detached
        ));
    }
}
