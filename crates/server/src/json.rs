//! A minimal JSON value, writer, and parser.
//!
//! The offline build container carries no serde, so the wire protocol
//! hand-rolls its serialization over this module. Two properties matter
//! more than generality:
//!
//! * **Exact `f64` round-trips.** Floats are written with Rust's shortest
//!   round-trip formatting (`{}`), which [`str::parse::<f64>`] inverts bit
//!   for bit for every finite value — the foundation of the serving
//!   layer's "replayed responses are bit-identical" guarantee. Non-finite
//!   floats (which no engine output produces) degrade to `null`.
//! * **Hostile-input safety.** The parser is recursion-depth-bounded and
//!   rejects trailing garbage, so a malformed frame becomes a structured
//!   protocol error, never a stack overflow or a silent partial parse.
//!
//! Numbers keep their integer-ness: a token without `.`/`e` parses to
//! [`Json::Int`], everything else to [`Json::Float`]. Readers that expect
//! a float accept either ([`Json::as_f64`]), so `1.0` surviving a trip as
//! `1` still decodes exactly.

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number token without fraction or exponent.
    Int(i64),
    /// A number token with fraction or exponent (finite).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (the writer is canonical).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (exact for `Int` up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric value as `usize`, when integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace). The encoding is
    /// canonical for a given value: field order is the construction
    /// order, floats use shortest round-trip formatting.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` is Rust's shortest exact round-trip form; it may
                    // drop the fraction ("1"), which decodes as Int — readers
                    // accept both, so the value survives unchanged.
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (n, item) in items.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (n, (k, v)) in fields.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth past which the parser refuses a document (a hostile
/// frame cannot drive the recursive parser off the stack).
const MAX_DEPTH: usize = 64;

/// Parses one JSON document, rejecting trailing non-whitespace.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos, depth + 1)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        let start = *pos;
        // Run of plain UTF-8 bytes, appended in one slice.
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(
            std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8".to_string())?,
        );
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pair?
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("unpaired surrogate".to_string());
                            }
                            let hex2 = bytes
                                .get(*pos + 3..*pos + 7)
                                .ok_or("truncated \\u escape")?;
                            let hex2 = std::str::from_utf8(hex2).map_err(|_| "bad \\u escape")?;
                            let lo = u32::from_str_radix(hex2, 16).map_err(|_| "bad \\u escape")?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("unpaired surrogate".to_string());
                            }
                            *pos += 6;
                            char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                                .ok_or("bad surrogate pair")?
                        } else {
                            char::from_u32(cp).ok_or("bad \\u codepoint")?
                        };
                        out.push(c);
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => unreachable!("loop stops only at quote or backslash"),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if token.is_empty() || token == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    // "-0" must stay a float: as an i64 it would lose the sign bit the
    // exact round-trip promises to keep.
    if fractional || token == "-0" {
        token
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number '{token}'"))
    } else {
        match token.parse::<i64>() {
            Ok(i) => Ok(Json::Int(i)),
            // Integer tokens beyond i64 fall back to f64 (lossy past 2^53;
            // no protocol field gets near that).
            Err(_) => token
                .parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number '{token}'")),
        }
    }
}

/// Shorthand for building an object.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":"x\n\"y\"","d":true,"e":null}}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(parse(&v.encode()).expect("re-parses"), v);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -0.0,
            std::f64::consts::FRAC_1_SQRT_2,
            1.000000123e8,
        ] {
            let enc = Json::Float(x).encode();
            let back = parse(&enc).expect("parses").as_f64().expect("number");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {enc} → {back}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let v = parse("[0,-7,9007199254740993]").expect("parses");
        let items = v.as_arr().expect("array");
        assert_eq!(items[0], Json::Int(0));
        assert_eq!(items[1], Json::Int(-7));
        // Beyond 2^53 still parses (as the closest representable).
        assert!(items[2].as_f64().is_some() || items[2].as_u64().is_some());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "{\"a\":1}extra",
            "",
            "-",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_bound_refuses_hostile_nesting() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("Aé😀"));
        // Control characters are escaped on the way out.
        assert_eq!(Json::Str("\u{1}".into()).encode(), "\"\\u0001\"");
    }
}
