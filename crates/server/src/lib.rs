//! The PLASMA-HD probe service: the engine, served.
//!
//! PLASMA-HD's interactive loop — an analyst continuously re-probing a
//! growing corpus at shifting thresholds — only matters if the engine
//! can be *served*, not just linked. This crate stands the streaming
//! engine up behind a socket with zero new dependencies:
//!
//! * [`protocol`] — newline-delimited JSON frames over a hand-rolled
//!   [`json`] value (no serde in the offline container), with exact
//!   `f64` round-trips so served numbers are the library's numbers.
//! * [`handler`] — the transport-agnostic core: [`handler::ProbeService`]
//!   holds published corpora (one [`plasma_core::SharedKnowledgeCache`]
//!   each), [`handler::Connection`] maps `Request -> Response` and
//!   catches engine panics into structured errors.
//! * [`server`] — thread-per-connection TCP transport with pushed
//!   watch-delta frames, graceful drain, and (with `--data-dir`) a
//!   background snapshotter.
//! * [`persist`] — the serving half of durability: per-corpus
//!   `meta.json` beside the engine's snapshot + WAL
//!   ([`plasma_core::durable`]), so `ProbeService::with_data_dir`
//!   restarts every published corpus *warm* and bit-identical.
//! * [`client`] / [`trace`] — a blocking client, and the trace
//!   capture/replay harness that pins every served frame bit-identical
//!   to direct library execution.
//!
//! The serving guarantee is the engine's determinism carried across the
//! wire: a recorded script replayed against a fresh server reproduces
//! every response and watch-delta frame byte for byte
//! (`crates/server/tests/trace_replay.rs`).

pub mod client;
pub mod handler;
pub mod inproc;
pub mod json;
pub mod persist;
pub mod protocol;
pub mod server;
pub mod trace;

pub use client::{Frame, ProbeClient};
pub use handler::{
    Connection, IngestCursor, Interaction, ProbeService, RecoveredStats, RecoveryReport,
};
pub use inproc::InProcClient;
pub use persist::CorpusMeta;
pub use protocol::{ErrorCode, PublishCfg, Request, Response};
pub use server::ProbeServer;
pub use trace::{Trace, TraceEntry, TraceRecorder};
