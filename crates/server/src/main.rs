//! `plasma-serve`: the PLASMA-HD probe service over TCP.
//!
//! ```text
//! plasma-serve [--addr HOST:PORT] [--data-dir PATH] [--self-check]
//! ```
//!
//! Without flags, binds `--addr` (default `127.0.0.1:7171`) and serves
//! until a client sends `shutdown`. With `--data-dir`, every published
//! corpus persists (snapshot + ingest WAL) under `PATH/<fingerprint>/`
//! and a restart re-serves each one *warm* — same fingerprint, same
//! epoch, bit-identical probe and watch frames. With `--self-check`,
//! boots on an ephemeral port, runs a scripted client through every
//! verb (publish, attach, watch, probe, ingest, unwatch, memory_stats,
//! health, shutdown), verifies each reply, and exits non-zero on any
//! failure — the CI smoke test.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_server::{ProbeClient, ProbeServer, ProbeService, PublishCfg, Request};

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut data_dir: Option<String> = None;
    let mut self_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage("--addr needs a HOST:PORT value"),
            },
            "--data-dir" => match args.next() {
                Some(d) => data_dir = Some(d),
                None => return usage("--data-dir needs a PATH value"),
            },
            "--self-check" => self_check = true,
            "--help" | "-h" => {
                println!("usage: plasma-serve [--addr HOST:PORT] [--data-dir PATH] [--self-check]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag '{other}'")),
        }
    }
    if self_check {
        return match run_self_check() {
            Ok(()) => {
                println!("self-check: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("self-check: FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let service = match data_dir {
        Some(dir) => {
            let (service, reports) = match ProbeService::with_data_dir(&dir) {
                Ok(booted) => booted,
                Err(e) => {
                    eprintln!("plasma-serve: cannot open data dir {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for report in &reports {
                match &report.outcome {
                    Ok(stats) => println!(
                        "plasma-serve: recovered '{}' ({}) warm: {} records at epoch {} \
                         ({} WAL entries replayed{})",
                        stats.name,
                        report.fingerprint,
                        stats.records,
                        stats.epoch,
                        stats.replayed_entries,
                        if stats.wal_tail_discarded {
                            ", torn tail discarded"
                        } else {
                            ""
                        },
                    ),
                    Err(e) => eprintln!(
                        "plasma-serve: NOT serving corpus {}: {e}",
                        report.fingerprint
                    ),
                }
            }
            Arc::new(service)
        }
        None => Arc::new(ProbeService::new()),
    };
    let server = match ProbeServer::start(service, &addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("plasma-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("plasma-serve: listening on {}", server.local_addr());
    server.wait();
    println!("plasma-serve: drained, bye");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "plasma-serve: {msg}\n\
         usage: plasma-serve [--addr HOST:PORT] [--data-dir PATH] [--self-check]"
    );
    ExitCode::FAILURE
}

/// A deterministic little corpus for the scripted client.
fn demo_records(n: usize, offset: usize) -> Vec<SparseVector> {
    (0..n)
        .map(|i| {
            let i = i + offset;
            SparseVector::from_pairs(vec![
                ((i % 11) as u32, 1.0),
                ((i % 7 + 16) as u32, 0.5 + (i % 3) as f64),
                ((i % 5 + 32) as u32, 2.0),
            ])
        })
        .collect()
}

/// Boots a server on an ephemeral port and runs every verb through it.
fn run_self_check() -> Result<(), String> {
    let service = Arc::new(ProbeService::new());
    let server =
        ProbeServer::start(service, "127.0.0.1:0").map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    let mut client = ProbeClient::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    let step = |what: &str,
                client: &mut ProbeClient,
                req: Request,
                want_type: &str|
     -> Result<plasma_server::Frame, String> {
        let frame = client
            .request(&req)
            .map_err(|e| format!("{what}: transport failed: {e}"))?;
        if frame.frame_type() != want_type {
            return Err(format!("{what}: expected '{want_type}', got {}", frame.raw));
        }
        Ok(frame)
    };

    let published = step(
        "publish",
        &mut client,
        Request::Publish {
            name: "self-check".into(),
            measure: Similarity::Jaccard,
            records: demo_records(32, 0),
            cfg: PublishCfg::default(),
        },
        "published",
    )?;
    let fingerprint = published
        .json
        .get("fingerprint")
        .and_then(|f| f.as_str().map(str::to_string))
        .ok_or("publish reply carries no fingerprint")?;
    step(
        "attach",
        &mut client,
        Request::Attach {
            fingerprint,
            pinned: false,
            declared_measure: Some(Similarity::Jaccard),
        },
        "attached",
    )?;
    step(
        "watch",
        &mut client,
        Request::Watch { threshold: 0.6 },
        "watch_ack",
    )?;
    let registration = client
        .poll_event(Duration::from_secs(5))
        .map_err(|e| format!("watch: event read failed: {e}"))?
        .ok_or("watch: registration delta never arrived")?;
    if registration.frame_type() != "watch_delta" {
        return Err(format!("watch: expected delta, got {}", registration.raw));
    }
    step(
        "probe",
        &mut client,
        Request::Probe { threshold: 0.6 },
        "probe_result",
    )?;
    step(
        "ingest",
        &mut client,
        Request::Ingest {
            records: demo_records(8, 32),
        },
        "ingested",
    )?;
    let delta = client
        .poll_event(Duration::from_secs(5))
        .map_err(|e| format!("ingest: event read failed: {e}"))?
        .ok_or("ingest: watch delta never arrived")?;
    if delta.json.get("epoch").and_then(|e| e.as_u64()) != Some(1) {
        return Err(format!("ingest: delta at wrong epoch: {}", delta.raw));
    }
    let unwatched = step(
        "unwatch",
        &mut client,
        Request::Unwatch { watch_id: 0 },
        "unwatched",
    )?;
    if unwatched.json.get("watch_id").and_then(|w| w.as_u64()) != Some(0) {
        return Err(format!("unwatch: wrong id echoed: {}", unwatched.raw));
    }
    let unknown = step(
        "unwatch (unknown id)",
        &mut client,
        Request::Unwatch { watch_id: 99 },
        "error",
    )?;
    if unknown
        .json
        .get("code")
        .and_then(|c| c.as_str().map(str::to_string))
        != Some("unknown_watch".to_string())
    {
        return Err(format!("unwatch: wrong error code: {}", unknown.raw));
    }
    step(
        "memory_stats",
        &mut client,
        Request::MemoryStats,
        "memory_stats",
    )?;
    step("health", &mut client, Request::Health, "health")?;
    step("shutdown", &mut client, Request::Shutdown, "shutting_down")?;
    drop(client);
    server.wait();
    Ok(())
}
