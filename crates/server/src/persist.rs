//! Serving-layer persistence metadata: one `meta.json` per corpus
//! directory.
//!
//! The engine's durable layer ([`plasma_core::durable`]) persists what
//! the *engine* needs — sketch words, records, epoch, fingerprint. The
//! serving layer additionally needs what the *server* knew at publish
//! time: the human-readable name, the similarity measure, and the
//! client's [`PublishCfg`] overrides. Recovery resolves that `PublishCfg`
//! against the engine defaults exactly as `publish` did, so the
//! reconstructed [`plasma_core::ApssConfig`] — and therefore every
//! sketch word an ingest replay produces — is identical to the original
//! process's. The durable layer's own config guard (`n_hashes`, `seed`,
//! family) then cross-checks that against the snapshot META, so a
//! hand-edited `meta.json` is a structured refusal, not silent
//! divergence.
//!
//! The file is hand-rolled JSON over [`crate::json`] (no serde in the
//! offline container), written temp-file-then-rename like the engine's
//! snapshots.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use plasma_data::similarity::Similarity;

use crate::json::{self, obj, Json};
use crate::protocol::{measure_from, measure_str, PublishCfg};

/// What `publish` knew about a corpus, persisted alongside its snapshot
/// and WAL so a restarted server can re-serve it under the same name and
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusMeta {
    /// Human-readable corpus label (diagnostics only).
    pub name: String,
    /// Similarity family the corpus was published under.
    pub measure: Similarity,
    /// The publish-time configuration overrides; unset fields resolve
    /// against engine defaults exactly as the original publish did.
    pub cfg: PublishCfg,
}

impl CorpusMeta {
    /// Encodes the metadata as one canonical JSON document.
    pub fn encode(&self) -> String {
        let cfg = &self.cfg;
        let mut cfg_fields = Vec::new();
        if let Some(n) = cfg.n_hashes {
            cfg_fields.push(("n_hashes", Json::Int(n as i64)));
        }
        if let Some(seed) = cfg.seed {
            cfg_fields.push(("seed", Json::Int(seed as i64)));
        }
        if let Some((bands, width)) = cfg.bands {
            cfg_fields.push((
                "bands",
                Json::Arr(vec![Json::Int(bands as i64), Json::Int(width as i64)]),
            ));
        }
        if let Some(p) = cfg.parallelism {
            cfg_fields.push(("parallelism", Json::Int(p as i64)));
        }
        if let Some(x) = cfg.exact_on_accept {
            cfg_fields.push(("exact_on_accept", Json::Bool(x)));
        }
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("measure", Json::Str(measure_str(self.measure).into())),
            ("cfg", obj(cfg_fields)),
        ])
        .encode()
    }

    /// Decodes a `meta.json` document.
    pub fn decode(text: &str) -> Result<CorpusMeta, String> {
        let value = json::parse(text).map_err(|e| format!("invalid meta.json: {e}"))?;
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("meta.json: missing 'name'")?
            .to_string();
        let measure = value
            .get("measure")
            .and_then(Json::as_str)
            .and_then(measure_from)
            .ok_or("meta.json: 'measure' must be \"cosine\" or \"jaccard\"")?;
        let mut cfg = PublishCfg::default();
        if let Some(c) = value.get("cfg") {
            cfg.n_hashes = c.get("n_hashes").and_then(Json::as_usize);
            cfg.seed = c.get("seed").and_then(Json::as_u64);
            cfg.bands = c.get("bands").and_then(Json::as_arr).and_then(|b| {
                match (b.first()?.as_usize(), b.get(1)?.as_usize()) {
                    (Some(bands), Some(width)) => Some((bands, width)),
                    _ => None,
                }
            });
            cfg.parallelism = c.get("parallelism").and_then(Json::as_usize);
            cfg.exact_on_accept = c.get("exact_on_accept").and_then(Json::as_bool);
        }
        Ok(CorpusMeta { name, measure, cfg })
    }
}

/// Writes `dir/meta.json` atomically (temp file, sync, rename).
pub fn write_meta(dir: &Path, meta: &CorpusMeta) -> std::io::Result<()> {
    let tmp = dir.join("meta.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(meta.encode().as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join("meta.json"))
}

/// Reads and decodes `dir/meta.json`.
pub fn read_meta(dir: &Path) -> Result<CorpusMeta, String> {
    let path = dir.join("meta.json");
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    CorpusMeta::decode(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("plasma-meta-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let meta = CorpusMeta {
            name: "demo".into(),
            measure: Similarity::Jaccard,
            cfg: PublishCfg {
                n_hashes: Some(64),
                seed: None,
                bands: Some((8, 8)),
                parallelism: Some(1),
                exact_on_accept: None,
            },
        };
        write_meta(&dir, &meta).expect("write");
        let back = read_meta(&dir).expect("read");
        assert_eq!(back, meta);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unset_cfg_fields_stay_unset() {
        let meta = CorpusMeta {
            name: String::new(),
            measure: Similarity::Cosine,
            cfg: PublishCfg::default(),
        };
        let back = CorpusMeta::decode(&meta.encode()).expect("decodes");
        assert_eq!(back.cfg, PublishCfg::default());
    }

    #[test]
    fn garbage_meta_is_a_structured_refusal() {
        for bad in [
            "",
            "not json",
            "{\"name\":\"x\"}",
            "{\"measure\":\"jaccard\"}",
        ] {
            assert!(CorpusMeta::decode(bad).is_err(), "{bad:?} should fail");
        }
    }
}
