//! The wire protocol: newline-delimited JSON frames.
//!
//! One request frame in, one response frame out, plus unsolicited
//! `watch_delta` *event* frames (marked `"event": true`) pushed after
//! ingests. The protocol layer is pure data — it never touches a socket
//! or an engine type's behaviour, only its fields — so the handler
//! ([`crate::handler`]) stays transport-agnostic and another framing
//! (gRPC, UDS) can reuse both ends unchanged.
//!
//! # Canonical encoding
//!
//! [`Response::encode`] is canonical: a fixed field order and the exact
//! shortest-round-trip float form from [`crate::json`]. The trace
//! harness compares *encoded strings*, which makes "bit-identical to a
//! direct library call" a plain `assert_eq!` — including the `f64`
//! similarity estimates, which round-trip exactly.
//!
//! # Error codes
//!
//! Every failure is a structured `{"type":"error","code":...}` frame;
//! the connection stays open. [`ErrorCode`] is the closed set of codes
//! clients may match on.

use plasma_core::apss::{ApssStats, SimilarPair};
use plasma_core::{ApssConfig, CandidateStrategy, ProbeReport, WatchDelta};
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::{PairDecision, PairEstimate};

use crate::json::{self, obj, Json};

/// Hard cap on one frame's byte length; a peer that streams an unbounded
/// line is cut off rather than buffered forever.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// The closed set of protocol error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a JSON object, or fields had the wrong shape.
    MalformedFrame,
    /// The `verb` field named no known verb.
    UnknownVerb,
    /// A known verb with invalid or missing arguments.
    BadRequest,
    /// `attach` named a fingerprint no published corpus carries.
    UnknownFingerprint,
    /// A session verb arrived before a successful `attach`.
    NoSession,
    /// `attach` on a connection that already holds a session.
    AlreadyAttached,
    /// A pinned session probed a corpus that has since grown — the
    /// engine's stale-prefix guard fired.
    StaleSession,
    /// `unwatch` named a watch id this connection never registered (or
    /// already cancelled).
    UnknownWatch,
    /// The engine panicked for any other reason (e.g. seed or measure
    /// mismatch against the shared cache); the message carries the
    /// panic text.
    EnginePanic,
    /// The server is draining and accepts no new work.
    Draining,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownFingerprint => "unknown_fingerprint",
            ErrorCode::NoSession => "no_session",
            ErrorCode::AlreadyAttached => "already_attached",
            ErrorCode::StaleSession => "stale_session",
            ErrorCode::UnknownWatch => "unknown_watch",
            ErrorCode::EnginePanic => "engine_panic",
            ErrorCode::Draining => "draining",
        }
    }
}

/// Probe configuration a `publish` request may override; unset fields
/// take the engine defaults. The fingerprint covers `n_hashes`, `seed`,
/// and the Bayes batch, so two publishes differing there are distinct
/// corpora.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PublishCfg {
    /// Hashes per sketch (default 256).
    pub n_hashes: Option<usize>,
    /// RNG/hash seed (default engine seed).
    pub seed: Option<u64>,
    /// Banded candidate generation as `(bands, width)`; default
    /// exhaustive.
    pub bands: Option<(usize, usize)>,
    /// Worker threads (`1` = sequential; default all cores). Results are
    /// bit-identical at any setting.
    pub parallelism: Option<usize>,
    /// Recompute accepted pairs exactly (default false).
    pub exact_on_accept: Option<bool>,
}

impl PublishCfg {
    /// Resolves against engine defaults.
    pub fn to_apss_config(&self) -> ApssConfig {
        let mut cfg = ApssConfig::default();
        if let Some(n) = self.n_hashes {
            cfg.n_hashes = n;
        }
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        if let Some((bands, width)) = self.bands {
            cfg.candidates = CandidateStrategy::Banded { bands, width };
        }
        if let Some(p) = self.parallelism {
            cfg.parallelism = Some(p);
        }
        if let Some(x) = self.exact_on_accept {
            cfg.exact_on_accept = x;
        }
        cfg
    }
}

/// A client request, decoded from one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Registers a corpus with the server and builds (or reuses) its
    /// shared knowledge cache. Idempotent by fingerprint.
    Publish {
        /// Human-readable corpus label (diagnostics only; not part of
        /// the fingerprint).
        name: String,
        /// Similarity family.
        measure: Similarity,
        /// The corpus records.
        records: Vec<SparseVector>,
        /// Probe configuration overrides.
        cfg: PublishCfg,
    },
    /// Opens this connection's session on a published corpus.
    Attach {
        /// The corpus fingerprint, 32 hex digits, as reported by
        /// `publish`.
        fingerprint: String,
        /// Pinned sessions are probe-only snapshots of the corpus at
        /// attach time; streaming sessions (the default) may ingest and
        /// watch.
        pinned: bool,
        /// When set, the session asserts this family against the shared
        /// cache — a mismatch surfaces the engine's guard as a
        /// structured error.
        declared_measure: Option<Similarity>,
    },
    /// Probes the attached corpus at a threshold.
    Probe {
        /// Similarity threshold in `[0, 1]`.
        threshold: f64,
    },
    /// Appends a batch to the attached (streaming) corpus.
    Ingest {
        /// The batch.
        records: Vec<SparseVector>,
    },
    /// Registers a standing threshold watch; deltas arrive as pushed
    /// `watch_delta` event frames.
    Watch {
        /// Similarity threshold in `[0, 1]`.
        threshold: f64,
    },
    /// Cancels one of this connection's watches; no further deltas are
    /// delivered for it. An unknown id is a structured `unknown_watch`
    /// error.
    Unwatch {
        /// The id `watch_ack` reported.
        watch_id: u64,
    },
    /// Memory accounting for the attached corpus (or the registry when
    /// unattached).
    MemoryStats,
    /// Liveness + load counters.
    Health,
    /// Readiness (false while draining).
    Ready,
    /// Closes this connection's session, keeping the connection.
    Detach,
    /// Asks the server to drain and stop.
    Shutdown,
}

/// A server response or pushed event, encoded as one frame.
#[derive(Debug, Clone)]
pub enum Response {
    /// `publish` succeeded.
    Published {
        /// Corpus fingerprint, 32 hex digits.
        fingerprint: String,
        /// Corpus size.
        records: usize,
        /// Corpus epoch (non-zero when re-publishing a grown corpus).
        epoch: u64,
    },
    /// `attach` succeeded.
    Attached {
        /// Echoed fingerprint.
        fingerprint: String,
        /// Echoed session mode.
        pinned: bool,
        /// Corpus size at attach.
        records: usize,
        /// Corpus epoch at attach.
        epoch: u64,
    },
    /// A probe's answer. Timing fields are deliberately absent — every
    /// field here is deterministic for a given op history, which is what
    /// lets traces assert bit-identity.
    ProbeResult {
        /// Echoed threshold.
        threshold: f64,
        /// Corpus epoch the probe saw.
        epoch: u64,
        /// Pairs at or above the threshold, canonical `(i, j)` order.
        pairs: Vec<SimilarPair>,
        /// Candidates evaluated.
        candidates: u64,
        /// Candidates pruned.
        pruned: u64,
        /// Pair evaluations answered entirely from the cache.
        cache_hits: u64,
        /// Hashes compared.
        hashes_compared: u64,
    },
    /// An ingest's receipt.
    Ingested {
        /// Records appended.
        records_added: usize,
        /// Corpus size after.
        total_records: usize,
        /// Corpus epoch after.
        epoch: u64,
        /// Memos carried across the bump.
        carried_memos: usize,
    },
    /// A watch was registered; its first delta (the full answer at the
    /// current epoch) follows as an event frame.
    WatchAck {
        /// Connection-scoped watch id, echoed on every delta frame.
        watch_id: u64,
        /// Echoed threshold.
        threshold: f64,
    },
    /// `unwatch` succeeded; the watch's registry entry is cancelled.
    Unwatched {
        /// Echoed watch id.
        watch_id: u64,
    },
    /// One epoch's delta at one watched threshold (pushed; marked
    /// `"event": true` on the wire).
    WatchDeltaEvent {
        /// The watch this delta belongs to.
        watch_id: u64,
        /// The delta.
        delta: WatchDelta,
    },
    /// Memory accounting.
    MemoryStatsResult {
        /// `"corpus"` when attached, `"registry"` otherwise.
        scope: String,
        /// Resident pair memos.
        entries: usize,
        /// Accounted memo bytes.
        memo_bytes: usize,
        /// Immutable sketch bytes.
        sketch_bytes: usize,
        /// Band-bucket cache bytes.
        bucket_cache_bytes: usize,
        /// Lifetime records bucketed.
        bucket_build_records: u64,
        /// Configured cap, if any.
        capacity_bytes: Option<usize>,
        /// Lifetime memos evicted.
        evicted_entries: u64,
        /// Lifetime cache hits.
        cache_hits: u64,
    },
    /// Liveness + load counters.
    Health {
        /// `"ok"` or `"draining"`.
        status: String,
        /// Published corpora.
        corpora: usize,
        /// Live attached sessions.
        sessions: usize,
        /// Live watches across all corpora.
        watches: usize,
    },
    /// Readiness.
    Ready {
        /// False while draining.
        ready: bool,
    },
    /// `detach` succeeded.
    Detached,
    /// `shutdown` acknowledged; the server drains after this frame.
    ShuttingDown,
    /// A structured failure; the connection stays open.
    Error {
        /// One of the [`ErrorCode`] spellings.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

pub(crate) fn measure_str(m: Similarity) -> &'static str {
    match m {
        Similarity::Cosine => "cosine",
        Similarity::Jaccard => "jaccard",
    }
}

pub(crate) fn measure_from(s: &str) -> Option<Similarity> {
    match s {
        "cosine" => Some(Similarity::Cosine),
        "jaccard" => Some(Similarity::Jaccard),
        _ => None,
    }
}

fn records_json(records: &[SparseVector]) -> Json {
    Json::Arr(
        records
            .iter()
            .map(|r| {
                Json::Arr(
                    r.iter()
                        .map(|(d, w)| Json::Arr(vec![Json::Int(i64::from(d)), Json::Float(w)]))
                        .collect(),
                )
            })
            .collect(),
    )
}

fn records_from(value: &Json) -> Result<Vec<SparseVector>, String> {
    let rows = value.as_arr().ok_or("'records' must be an array")?;
    rows.iter()
        .map(|row| {
            let entries = row
                .as_arr()
                .ok_or("record must be an array of [dim, weight]")?;
            let pairs = entries
                .iter()
                .map(|e| {
                    let pair = e
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| "record entry must be a [dim, weight] pair".to_string())?;
                    let dim = pair[0]
                        .as_u64()
                        .and_then(|d| u32::try_from(d).ok())
                        .ok_or("dimension must be a u32")?;
                    let weight = pair[1].as_f64().ok_or("weight must be a number")?;
                    Ok::<(u32, f64), String>((dim, weight))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SparseVector::from_pairs(pairs))
        })
        .collect()
}

fn pairs_json(pairs: &[SimilarPair]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|p| {
                Json::Arr(vec![
                    Json::Int(i64::from(p.i)),
                    Json::Int(i64::from(p.j)),
                    Json::Float(p.similarity),
                ])
            })
            .collect(),
    )
}

fn estimate_json(e: &PairEstimate) -> Json {
    let decision = match e.decision {
        PairDecision::Pruned => "pruned",
        PairDecision::Accepted => "accepted",
        PairDecision::Exhausted => "exhausted",
    };
    obj(vec![
        ("decision", Json::Str(decision.to_string())),
        ("matches", Json::Int(i64::from(e.matches))),
        ("hashes", Json::Int(i64::from(e.hashes))),
        ("map_similarity", Json::Float(e.map_similarity)),
        ("variance", Json::Float(e.variance)),
    ])
}

fn work_json(w: &ApssStats) -> Json {
    // Timing fields are dropped: counters only, so the frame is
    // deterministic for a given op history.
    obj(vec![
        ("candidates", Json::Int(w.candidates as i64)),
        ("pruned", Json::Int(w.pruned as i64)),
        ("accepted", Json::Int(w.accepted as i64)),
        ("exhausted", Json::Int(w.exhausted as i64)),
        ("hashes_compared", Json::Int(w.hashes_compared as i64)),
        ("cache_hits", Json::Int(w.cache_hits as i64)),
    ])
}

impl Request {
    /// Encodes the request as one frame (no trailing newline).
    pub fn encode(&self) -> String {
        let value = match self {
            Request::Publish {
                name,
                measure,
                records,
                cfg,
            } => {
                let mut cfg_fields = Vec::new();
                if let Some(n) = cfg.n_hashes {
                    cfg_fields.push(("n_hashes", Json::Int(n as i64)));
                }
                if let Some(seed) = cfg.seed {
                    cfg_fields.push(("seed", Json::Int(seed as i64)));
                }
                if let Some((bands, width)) = cfg.bands {
                    cfg_fields.push((
                        "bands",
                        Json::Arr(vec![Json::Int(bands as i64), Json::Int(width as i64)]),
                    ));
                }
                if let Some(p) = cfg.parallelism {
                    cfg_fields.push(("parallelism", Json::Int(p as i64)));
                }
                if let Some(x) = cfg.exact_on_accept {
                    cfg_fields.push(("exact_on_accept", Json::Bool(x)));
                }
                obj(vec![
                    ("verb", Json::Str("publish".into())),
                    ("name", Json::Str(name.clone())),
                    ("measure", Json::Str(measure_str(*measure).into())),
                    ("records", records_json(records)),
                    ("cfg", obj(cfg_fields)),
                ])
            }
            Request::Attach {
                fingerprint,
                pinned,
                declared_measure,
            } => {
                let mut fields = vec![
                    ("verb", Json::Str("attach".into())),
                    ("fingerprint", Json::Str(fingerprint.clone())),
                    ("pinned", Json::Bool(*pinned)),
                ];
                if let Some(m) = declared_measure {
                    fields.push(("measure", Json::Str(measure_str(*m).into())));
                }
                obj(fields)
            }
            Request::Probe { threshold } => obj(vec![
                ("verb", Json::Str("probe".into())),
                ("threshold", Json::Float(*threshold)),
            ]),
            Request::Ingest { records } => obj(vec![
                ("verb", Json::Str("ingest".into())),
                ("records", records_json(records)),
            ]),
            Request::Watch { threshold } => obj(vec![
                ("verb", Json::Str("watch".into())),
                ("threshold", Json::Float(*threshold)),
            ]),
            Request::Unwatch { watch_id } => obj(vec![
                ("verb", Json::Str("unwatch".into())),
                ("watch_id", Json::Int(*watch_id as i64)),
            ]),
            Request::MemoryStats => obj(vec![("verb", Json::Str("memory_stats".into()))]),
            Request::Health => obj(vec![("verb", Json::Str("health".into()))]),
            Request::Ready => obj(vec![("verb", Json::Str("ready".into()))]),
            Request::Detach => obj(vec![("verb", Json::Str("detach".into()))]),
            Request::Shutdown => obj(vec![("verb", Json::Str("shutdown".into()))]),
        };
        value.encode()
    }

    /// Decodes one frame. Failures carry the [`ErrorCode`] the server
    /// should answer with.
    pub fn decode(frame: &str) -> Result<Request, (ErrorCode, String)> {
        let value = json::parse(frame)
            .map_err(|e| (ErrorCode::MalformedFrame, format!("invalid JSON: {e}")))?;
        if !matches!(value, Json::Obj(_)) {
            return Err((
                ErrorCode::MalformedFrame,
                "frame must be a JSON object".to_string(),
            ));
        }
        let verb = value
            .get("verb")
            .and_then(Json::as_str)
            .ok_or((ErrorCode::MalformedFrame, "missing 'verb'".to_string()))?;
        let bad = |msg: &str| (ErrorCode::BadRequest, msg.to_string());
        match verb {
            "publish" => {
                let name = value
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let measure = value
                    .get("measure")
                    .and_then(Json::as_str)
                    .and_then(measure_from)
                    .ok_or_else(|| bad("'measure' must be \"cosine\" or \"jaccard\""))?;
                let records = records_from(
                    value
                        .get("records")
                        .ok_or_else(|| bad("missing 'records'"))?,
                )
                .map_err(|e| bad(&e))?;
                let mut cfg = PublishCfg::default();
                if let Some(c) = value.get("cfg") {
                    cfg.n_hashes = c.get("n_hashes").and_then(Json::as_usize);
                    cfg.seed = c.get("seed").and_then(Json::as_u64);
                    cfg.bands = c.get("bands").and_then(Json::as_arr).and_then(|b| {
                        match (b.first()?.as_usize(), b.get(1)?.as_usize()) {
                            (Some(bands), Some(width)) => Some((bands, width)),
                            _ => None,
                        }
                    });
                    cfg.parallelism = c.get("parallelism").and_then(Json::as_usize);
                    cfg.exact_on_accept = c.get("exact_on_accept").and_then(Json::as_bool);
                }
                Ok(Request::Publish {
                    name,
                    measure,
                    records,
                    cfg,
                })
            }
            "attach" => {
                let fingerprint = value
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing 'fingerprint'"))?
                    .to_string();
                let pinned = value
                    .get("pinned")
                    .map(|p| p.as_bool().ok_or_else(|| bad("'pinned' must be a bool")))
                    .transpose()?
                    .unwrap_or(false);
                let declared_measure = match value.get("measure") {
                    None => None,
                    Some(m) => Some(
                        m.as_str()
                            .and_then(measure_from)
                            .ok_or_else(|| bad("'measure' must be \"cosine\" or \"jaccard\""))?,
                    ),
                };
                Ok(Request::Attach {
                    fingerprint,
                    pinned,
                    declared_measure,
                })
            }
            "probe" | "watch" => {
                let threshold = value
                    .get("threshold")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("missing numeric 'threshold'"))?;
                if !(0.0..=1.0).contains(&threshold) {
                    return Err(bad("'threshold' must lie in [0, 1]"));
                }
                Ok(if verb == "probe" {
                    Request::Probe { threshold }
                } else {
                    Request::Watch { threshold }
                })
            }
            "unwatch" => {
                let watch_id = value
                    .get("watch_id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing integer 'watch_id'"))?;
                Ok(Request::Unwatch { watch_id })
            }
            "ingest" => {
                let records = records_from(
                    value
                        .get("records")
                        .ok_or_else(|| bad("missing 'records'"))?,
                )
                .map_err(|e| bad(&e))?;
                Ok(Request::Ingest { records })
            }
            "memory_stats" => Ok(Request::MemoryStats),
            "health" => Ok(Request::Health),
            "ready" => Ok(Request::Ready),
            "detach" => Ok(Request::Detach),
            "shutdown" => Ok(Request::Shutdown),
            other => Err((ErrorCode::UnknownVerb, format!("unknown verb '{other}'"))),
        }
    }
}

impl Response {
    /// Encodes the response as one canonical frame (no trailing
    /// newline). Canonical means: fixed field order, exact
    /// shortest-round-trip floats — equal frames iff equal values.
    pub fn encode(&self) -> String {
        let value = match self {
            Response::Published {
                fingerprint,
                records,
                epoch,
            } => obj(vec![
                ("type", Json::Str("published".into())),
                ("fingerprint", Json::Str(fingerprint.clone())),
                ("records", Json::Int(*records as i64)),
                ("epoch", Json::Int(*epoch as i64)),
            ]),
            Response::Attached {
                fingerprint,
                pinned,
                records,
                epoch,
            } => obj(vec![
                ("type", Json::Str("attached".into())),
                ("fingerprint", Json::Str(fingerprint.clone())),
                ("pinned", Json::Bool(*pinned)),
                ("records", Json::Int(*records as i64)),
                ("epoch", Json::Int(*epoch as i64)),
            ]),
            Response::ProbeResult {
                threshold,
                epoch,
                pairs,
                candidates,
                pruned,
                cache_hits,
                hashes_compared,
            } => obj(vec![
                ("type", Json::Str("probe_result".into())),
                ("threshold", Json::Float(*threshold)),
                ("epoch", Json::Int(*epoch as i64)),
                ("pairs", pairs_json(pairs)),
                ("candidates", Json::Int(*candidates as i64)),
                ("pruned", Json::Int(*pruned as i64)),
                ("cache_hits", Json::Int(*cache_hits as i64)),
                ("hashes_compared", Json::Int(*hashes_compared as i64)),
            ]),
            Response::Ingested {
                records_added,
                total_records,
                epoch,
                carried_memos,
            } => obj(vec![
                ("type", Json::Str("ingested".into())),
                ("records_added", Json::Int(*records_added as i64)),
                ("total_records", Json::Int(*total_records as i64)),
                ("epoch", Json::Int(*epoch as i64)),
                ("carried_memos", Json::Int(*carried_memos as i64)),
            ]),
            Response::WatchAck {
                watch_id,
                threshold,
            } => obj(vec![
                ("type", Json::Str("watch_ack".into())),
                ("watch_id", Json::Int(*watch_id as i64)),
                ("threshold", Json::Float(*threshold)),
            ]),
            Response::Unwatched { watch_id } => obj(vec![
                ("type", Json::Str("unwatched".into())),
                ("watch_id", Json::Int(*watch_id as i64)),
            ]),
            Response::WatchDeltaEvent { watch_id, delta } => obj(vec![
                ("type", Json::Str("watch_delta".into())),
                ("event", Json::Bool(true)),
                ("watch_id", Json::Int(*watch_id as i64)),
                ("epoch", Json::Int(delta.epoch as i64)),
                ("threshold", Json::Float(delta.threshold)),
                ("new_pairs", pairs_json(&delta.new_pairs)),
                (
                    "estimates",
                    Json::Arr(
                        delta
                            .estimates
                            .iter()
                            .map(|(i, j, e)| {
                                Json::Arr(vec![
                                    Json::Int(i64::from(*i)),
                                    Json::Int(i64::from(*j)),
                                    estimate_json(e),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("work", work_json(&delta.work)),
            ]),
            Response::MemoryStatsResult {
                scope,
                entries,
                memo_bytes,
                sketch_bytes,
                bucket_cache_bytes,
                bucket_build_records,
                capacity_bytes,
                evicted_entries,
                cache_hits,
            } => obj(vec![
                ("type", Json::Str("memory_stats".into())),
                ("scope", Json::Str(scope.clone())),
                ("entries", Json::Int(*entries as i64)),
                ("memo_bytes", Json::Int(*memo_bytes as i64)),
                ("sketch_bytes", Json::Int(*sketch_bytes as i64)),
                ("bucket_cache_bytes", Json::Int(*bucket_cache_bytes as i64)),
                (
                    "bucket_build_records",
                    Json::Int(*bucket_build_records as i64),
                ),
                (
                    "capacity_bytes",
                    capacity_bytes.map_or(Json::Null, |c| Json::Int(c as i64)),
                ),
                ("evicted_entries", Json::Int(*evicted_entries as i64)),
                ("cache_hits", Json::Int(*cache_hits as i64)),
            ]),
            Response::Health {
                status,
                corpora,
                sessions,
                watches,
            } => obj(vec![
                ("type", Json::Str("health".into())),
                ("status", Json::Str(status.clone())),
                ("corpora", Json::Int(*corpora as i64)),
                ("sessions", Json::Int(*sessions as i64)),
                ("watches", Json::Int(*watches as i64)),
            ]),
            Response::Ready { ready } => obj(vec![
                ("type", Json::Str("ready".into())),
                ("ready", Json::Bool(*ready)),
            ]),
            Response::Detached => obj(vec![("type", Json::Str("detached".into()))]),
            Response::ShuttingDown => obj(vec![("type", Json::Str("shutting_down".into()))]),
            Response::Error { code, message } => obj(vec![
                ("type", Json::Str("error".into())),
                ("code", Json::Str(code.as_str().into())),
                ("message", Json::Str(message.clone())),
            ]),
        };
        value.encode()
    }

    /// Builds a `ProbeResult` from an engine report (dropping the
    /// nondeterministic timing fields).
    pub fn from_probe(report: &ProbeReport, epoch: u64) -> Response {
        Response::ProbeResult {
            threshold: report.threshold,
            epoch,
            pairs: report.pairs.clone(),
            candidates: report.candidates,
            pruned: report.pruned,
            cache_hits: report.cache_hits,
            hashes_compared: report.hashes_compared,
        }
    }

    /// True for pushed event frames (`watch_delta`), false for
    /// request/response frames.
    pub fn is_event(&self) -> bool {
        matches!(self, Response::WatchDeltaEvent { .. })
    }
}

/// Renders a u128 fingerprint as the 32-hex-digit wire form.
pub fn fingerprint_hex(fp: u128) -> String {
    format!("{fp:032x}")
}

/// Parses the 32-hex-digit wire form back to a u128.
pub fn fingerprint_parse(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(rows: &[&[(u32, f64)]]) -> Vec<SparseVector> {
        rows.iter()
            .map(|r| SparseVector::from_pairs(r.to_vec()))
            .collect()
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Publish {
                name: "demo".into(),
                measure: Similarity::Jaccard,
                records: vecs(&[&[(0, 1.0), (3, 0.5)], &[(1, 2.0)]]),
                cfg: PublishCfg {
                    n_hashes: Some(128),
                    seed: Some(42),
                    bands: Some((16, 4)),
                    parallelism: Some(1),
                    exact_on_accept: Some(true),
                },
            },
            Request::Attach {
                fingerprint: "0".repeat(32),
                pinned: true,
                declared_measure: Some(Similarity::Cosine),
            },
            Request::Probe { threshold: 0.7 },
            Request::Ingest {
                records: vecs(&[&[(9, 1.0)]]),
            },
            Request::Watch { threshold: 0.5 },
            Request::Unwatch { watch_id: 3 },
            Request::MemoryStats,
            Request::Health,
            Request::Ready,
            Request::Detach,
            Request::Shutdown,
        ];
        for req in reqs {
            let decoded = Request::decode(&req.encode()).expect("decodes");
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn decode_failures_carry_codes() {
        let cases = [
            ("not json", ErrorCode::MalformedFrame),
            ("[1,2]", ErrorCode::MalformedFrame),
            ("{\"no\":\"verb\"}", ErrorCode::MalformedFrame),
            ("{\"verb\":\"frobnicate\"}", ErrorCode::UnknownVerb),
            ("{\"verb\":\"probe\"}", ErrorCode::BadRequest),
            (
                "{\"verb\":\"probe\",\"threshold\":1.5}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"verb\":\"publish\",\"measure\":\"euclid\",\"records\":[]}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"verb\":\"ingest\",\"records\":[[[0]]]}",
                ErrorCode::BadRequest,
            ),
            ("{\"verb\":\"unwatch\"}", ErrorCode::BadRequest),
            (
                "{\"verb\":\"unwatch\",\"watch_id\":-1}",
                ErrorCode::BadRequest,
            ),
        ];
        for (frame, want) in cases {
            let (code, _) = Request::decode(frame).expect_err(frame);
            assert_eq!(code, want, "{frame}");
        }
    }

    #[test]
    fn fingerprints_round_trip() {
        for fp in [0u128, 1, u128::MAX, 0xdead_beef_0123] {
            let hex = fingerprint_hex(fp);
            assert_eq!(hex.len(), 32);
            assert_eq!(fingerprint_parse(&hex), Some(fp));
        }
        assert_eq!(fingerprint_parse("xyz"), None);
        assert_eq!(fingerprint_parse(&"f".repeat(31)), None);
    }

    #[test]
    fn response_encoding_is_canonical() {
        let resp = Response::ProbeResult {
            threshold: 0.7,
            epoch: 3,
            pairs: vec![SimilarPair {
                i: 0,
                j: 2,
                similarity: 1.0 / 3.0,
            }],
            candidates: 5,
            pruned: 2,
            cache_hits: 1,
            hashes_compared: 96,
        };
        let frame = resp.encode();
        assert_eq!(frame, resp.clone().encode(), "encoding is deterministic");
        // The embedded float survives a parse round-trip exactly.
        let parsed = json::parse(&frame).expect("frame parses");
        let sim = parsed.get("pairs").unwrap().as_arr().unwrap()[0]
            .as_arr()
            .unwrap()[2]
            .as_f64()
            .unwrap();
        assert_eq!(sim.to_bits(), (1.0f64 / 3.0).to_bits());
    }
}
