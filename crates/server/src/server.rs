//! The TCP transport: newline-delimited frames over `std::net`.
//!
//! This layer owns everything the handler must not know about: sockets,
//! framing, per-connection threads, and shutdown. Each accepted
//! connection gets two threads —
//!
//! * a **reader** that extracts frames (a manual buffer over 50 ms read
//!   timeouts, so shutdown is observed even on a silent socket), decodes
//!   them, and drives [`Connection::handle`];
//! * a **pusher** that waits on the attached corpus's ingest signal
//!   (via an [`crate::handler::IngestCursor`]) and delivers watch-delta event
//!   frames queued by *other* connections' ingests into that corpus.
//!
//! On a durable service (one booted with a data directory) a third,
//! server-wide **snapshotter** thread periodically snapshots corpora
//! whose WALs have grown and truncates their logs, and takes a final
//! snapshot at drain.
//!
//! Both write through one per-connection mutex held across
//! handle-then-write, so a connection's frames never interleave and the
//! response-then-events order the handler produces is exactly the order
//! on the wire — the property the trace replay harness asserts.
//!
//! Disconnect at any point (mid-ingest, mid-watch-stream, half-sent
//! frame) lands in the reader's exit path: [`Connection::close`] drops
//! the session and watch handles, whose registry entries auto-cancel,
//! leaving survivors' outputs untouched. Shutdown (the `shutdown` verb
//! or [`ProbeServer::shutdown`]) drains: the acceptor stops, in-flight
//! requests complete, idle connections close after a short grace.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::handler::{Connection, Interaction, ProbeService};
use crate::protocol::{Request, Response, MAX_FRAME_BYTES};

/// Polling interval for the nonblocking acceptor and the socket read
/// timeout: shutdown latency is a small multiple of this.
const POLL: Duration = Duration::from_millis(50);

/// Read-timeout ticks a silent connection survives after a drain begins
/// before the server closes it.
const DRAIN_GRACE_TICKS: u32 = 4;

/// POLL ticks between background snapshot sweeps (durable servers only).
const SNAPSHOT_TICKS: u32 = 20;

/// WAL bytes (beyond the header) a corpus must accumulate before the
/// background sweep snapshots it; small logs are cheap to replay and not
/// worth rewriting a snapshot for. Drain always snapshots regardless.
const SNAPSHOT_MIN_WAL_BYTES: u64 = 64 * 1024;

/// A running probe server bound to one TCP address.
pub struct ProbeServer {
    service: Arc<ProbeService>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ProbeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting.
    pub fn start(service: Arc<ProbeService>, addr: &str) -> std::io::Result<ProbeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let service = service.clone();
            let connections = connections.clone();
            thread::spawn(move || loop {
                if service.draining() {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let service = service.clone();
                        let handle = thread::spawn(move || serve_connection(service, stream));
                        connections
                            .lock()
                            .expect("connection list lock")
                            .push(handle);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL / 10),
                    Err(_) => return,
                }
            })
        };
        // Durable servers run a background snapshotter: once a corpus's
        // WAL grows past the threshold, its state is snapshotted and the
        // log truncated, bounding both replay time at the next boot and
        // disk growth. At drain it takes one final full snapshot so a
        // clean restart needs no replay at all.
        let snapshotter = if service.data_dir().is_some() {
            let service = service.clone();
            Some(thread::spawn(move || loop {
                for _ in 0..SNAPSHOT_TICKS {
                    if service.draining() {
                        service.snapshot_now();
                        return;
                    }
                    thread::sleep(POLL);
                }
                service.snapshot_corpora(SNAPSHOT_MIN_WAL_BYTES);
            }))
        } else {
            None
        };
        Ok(ProbeServer {
            service,
            addr,
            acceptor: Some(acceptor),
            snapshotter,
            connections,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<ProbeService> {
        &self.service
    }

    /// Requests a drain (idempotent; the `shutdown` verb does the same).
    pub fn shutdown(&self) {
        self.service.begin_drain();
    }

    /// Blocks until the acceptor and every connection thread exit. With
    /// a drain requested, idle connections close after a short grace and
    /// in-flight requests finish first.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            let _ = snapshotter.join();
        }
        loop {
            let batch: Vec<JoinHandle<()>> = {
                let mut list = self.connections.lock().expect("connection list lock");
                list.drain(..).collect()
            };
            if batch.is_empty() {
                return;
            }
            for handle in batch {
                let _ = handle.join();
            }
        }
    }

    /// Shuts down and waits.
    pub fn stop(self) {
        self.shutdown();
        self.wait();
    }
}

/// Runs one accepted connection to completion: spawns the pusher, runs
/// the read loop inline, then tears both down.
fn serve_connection(service: Arc<ProbeService>, stream: TcpStream) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Connection::new(service.clone()));
    let writer = Arc::new(Mutex::new(write_half));
    let closed = Arc::new(AtomicBool::new(false));

    let pusher = {
        let conn = conn.clone();
        let writer = writer.clone();
        let closed = closed.clone();
        thread::spawn(move || {
            // The cursor follows whichever corpus this connection is
            // attached to; only that corpus's ingests (or a drain) wake
            // the thread, so idle connections and connections on other
            // corpora sleep through unrelated ingest storms.
            let mut cursor = conn.ingest_cursor();
            while !closed.load(Ordering::SeqCst) {
                conn.wait_ingest_signal(&mut cursor, POLL);
                // Lock order is writer → connection state, same as the
                // reader's handle-then-write path.
                let mut sink = writer.lock().expect("writer lock");
                for frame in conn.drain_watch_frames() {
                    if write_frame(&mut sink, &frame).is_err() {
                        return;
                    }
                }
            }
        })
    };

    read_loop(&service, &conn, stream, &writer);

    conn.close();
    closed.store(true, Ordering::SeqCst);
    let _ = pusher.join();
}

/// Reads frames until EOF, error, or post-drain grace expiry.
fn read_loop(
    service: &Arc<ProbeService>,
    conn: &Arc<Connection>,
    mut stream: TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut drain_ticks = 0u32;
    loop {
        // Serve every complete frame already buffered.
        while let Some(line) = take_line(&mut buf) {
            let interaction = match Request::decode(&line) {
                Ok(request) => conn.handle_locked(writer, request),
                Err((code, message)) => {
                    let mut sink = writer.lock().expect("writer lock");
                    let frame = Response::Error { code, message };
                    if write_frame(&mut sink, &frame).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if interaction.is_err() {
                return;
            }
        }
        if buf.len() > MAX_FRAME_BYTES {
            // A peer streaming an endless line: answer once, hang up.
            let mut sink = writer.lock().expect("writer lock");
            let _ = write_frame(
                &mut sink,
                &Response::Error {
                    code: crate::protocol::ErrorCode::MalformedFrame,
                    message: format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                },
            );
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                drain_ticks = 0;
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if service.draining() {
                    drain_ticks += 1;
                    if drain_ticks > DRAIN_GRACE_TICKS {
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Splits the oldest complete line out of `buf`, if any.
fn take_line(buf: &mut Vec<u8>) -> Option<String> {
    let idx = buf.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = buf.drain(..=idx).collect();
    // Invalid UTF-8 degrades lossily; the JSON decode then reports a
    // structured malformed_frame rather than the connection dying.
    Some(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned())
}

fn write_frame(sink: &mut TcpStream, frame: &Response) -> std::io::Result<()> {
    let mut bytes = frame.encode().into_bytes();
    bytes.push(b'\n');
    sink.write_all(&bytes)?;
    sink.flush()
}

impl Connection {
    /// Handles one request with the connection's writer lock held across
    /// handle-then-write, so pushed frames never interleave with the
    /// response+events sequence. Returns `Err(())` when the peer is gone.
    fn handle_locked(
        self: &Arc<Self>,
        writer: &Arc<Mutex<TcpStream>>,
        request: Request,
    ) -> Result<(), ()> {
        let mut sink = writer.lock().expect("writer lock");
        let Interaction { response, events } = self.handle(request);
        write_frame(&mut sink, &response).map_err(|_| ())?;
        for event in &events {
            write_frame(&mut sink, event).map_err(|_| ())?;
        }
        Ok(())
    }
}
