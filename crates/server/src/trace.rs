//! Trace capture and replay: the differential discipline for the wire.
//!
//! A [`TraceRecorder`] drives the transport-agnostic handler directly
//! (no socket) and records, per request, the **canonically encoded**
//! response frame and event frames. The recorded [`Trace`] can then be
//! replayed through a live TCP server ([`Trace::replay_over_tcp`]):
//! every frame that comes back must equal its recorded counterpart as a
//! raw string — which, because the encoding round-trips `f64` exactly,
//! pins pairs, estimates, and work counters bit for bit.
//!
//! Replay only makes sense against a server in an equivalent state
//! (normally: a fresh service, since work counters reflect cache
//! warmth). Record against a fresh [`ProbeService`], replay against a
//! fresh server, and the two histories are identical by construction.
//!
//! Traces serialize to JSON-lines ([`Trace::to_jsonl`]) with each frame
//! embedded as a *string* — so the round-trip preserves the recorded
//! bytes exactly and a stored trace is a regression artifact.

use std::sync::Arc;
use std::time::Duration;

use crate::client::ProbeClient;
use crate::handler::{Connection, Interaction, ProbeService};
use crate::json::{self, obj, Json};
use crate::protocol::Request;

/// One recorded interaction: the request and the exact frames it
/// produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The request, as its encoded frame.
    pub request: String,
    /// The canonical response frame.
    pub response: String,
    /// The event frames pushed behind the response, in order.
    pub events: Vec<String>,
}

/// A recorded client script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Interactions in script order.
    pub entries: Vec<TraceEntry>,
}

/// Records a script by running it against the handler in-process.
pub struct TraceRecorder {
    conn: Connection,
    trace: Trace,
}

impl TraceRecorder {
    /// Opens a recording connection against `service`.
    pub fn new(service: Arc<ProbeService>) -> TraceRecorder {
        TraceRecorder {
            conn: Connection::new(service),
            trace: Trace::default(),
        }
    }

    /// Handles `request`, records the interaction, and returns the
    /// entry just recorded.
    pub fn apply(&mut self, request: Request) -> &TraceEntry {
        let encoded = request.encode();
        let Interaction { response, events } = self.conn.handle(request);
        self.trace.entries.push(TraceEntry {
            request: encoded,
            response: response.encode(),
            events: events.iter().map(|e| e.encode()).collect(),
        });
        self.trace.entries.last().expect("just pushed")
    }

    /// The recording connection (e.g. to inspect watch state).
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    /// Finishes recording.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

impl Trace {
    /// Serializes to JSON-lines, one entry per line, frames embedded as
    /// strings so the stored bytes are exactly the recorded bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let line = obj(vec![
                ("request", Json::Str(entry.request.clone())),
                ("response", Json::Str(entry.response.clone())),
                (
                    "events",
                    Json::Arr(entry.events.iter().cloned().map(Json::Str).collect()),
                ),
            ]);
            out.push_str(&line.encode());
            out.push('\n');
        }
        out
    }

    /// Parses the [`to_jsonl`](Self::to_jsonl) form.
    pub fn from_jsonl(text: &str) -> Result<Trace, String> {
        let mut entries = Vec::new();
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| format!("line {}: {e}", n + 1))?;
            let field = |key: &str| {
                value
                    .get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: missing '{key}'", n + 1))
            };
            let events = value
                .get("events")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("line {}: missing 'events'", n + 1))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("line {}: non-string event", n + 1))
                })
                .collect::<Result<Vec<_>, _>>()?;
            entries.push(TraceEntry {
                request: field("request")?,
                response: field("response")?,
                events,
            });
        }
        Ok(Trace { entries })
    }

    /// Replays the script over a live TCP server on one connection,
    /// asserting every response and event frame equals its recording
    /// byte for byte. Returns the first mismatch as an error.
    pub fn replay_over_tcp(&self, addr: impl std::net::ToSocketAddrs) -> Result<(), String> {
        let mut client = ProbeClient::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        for (n, entry) in self.entries.iter().enumerate() {
            client
                .send_raw(&entry.request)
                .map_err(|e| format!("entry {n}: send failed: {e}"))?;
            // The handler emits response first, then events; the writer
            // lock guarantees that order survives the wire verbatim.
            let reply = client
                .read_reply(Duration::from_secs(10))
                .map_err(|e| format!("entry {n}: read failed: {e}"))?
                .ok_or_else(|| format!("entry {n}: no reply within 10s"))?
                .raw;
            if reply != entry.response {
                return Err(format!(
                    "entry {n} ({}): response diverged\n  recorded: {}\n  replayed: {}",
                    entry.request, entry.response, reply
                ));
            }
            for (k, expected) in entry.events.iter().enumerate() {
                let frame = client
                    .poll_event(Duration::from_secs(10))
                    .map_err(|e| format!("entry {n} event {k}: read failed: {e}"))?
                    .ok_or_else(|| format!("entry {n} event {k}: no frame arrived"))?;
                if &frame.raw != expected {
                    return Err(format!(
                        "entry {n} event {k}: frame diverged\n  recorded: {expected}\n  replayed: {}",
                        frame.raw
                    ));
                }
            }
        }
        Ok(())
    }
}
