//! Shared fixtures for the server integration suites.

// Each test binary compiles its own copy and uses its own subset.
#![allow(dead_code)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_server::{Frame, ProbeClient, ProbeServer, ProbeService, PublishCfg, Request};

/// A deterministic corpus slice with real similarity structure: records
/// share dimension clusters, so probes at mid thresholds find pairs and
/// prune others. `offset` continues the same stream (for ingest
/// batches).
pub fn corpus(n: usize, offset: usize) -> Vec<SparseVector> {
    (0..n)
        .map(|k| {
            let i = k + offset;
            // Three overlapping dimension groups; every ~4th record is a
            // near-duplicate of its predecessor.
            let base = if i % 4 == 3 { i - 1 } else { i };
            SparseVector::from_pairs(vec![
                ((base % 9) as u32, 1.0),
                ((base % 6 + 12) as u32, 1.0),
                ((base % 4 + 24) as u32, 1.0),
                ((i % 13 + 32) as u32, 1.0),
            ])
        })
        .collect()
}

/// Boots a fresh service and TCP server on an ephemeral port.
pub fn boot() -> (Arc<ProbeService>, ProbeServer) {
    let service = Arc::new(ProbeService::new());
    let server = ProbeServer::start(service.clone(), "127.0.0.1:0").expect("bind ephemeral port");
    (service, server)
}

/// The publish request every suite uses unless it needs overrides:
/// `parallelism: None` inherits the `PLASMA_PARALLELISM` CI matrix.
pub fn publish_request(records: Vec<SparseVector>, cfg: PublishCfg) -> Request {
    Request::Publish {
        name: "it-corpus".into(),
        measure: Similarity::Jaccard,
        records,
        cfg,
    }
}

/// Publishes over `client` and returns the fingerprint.
pub fn publish(client: &mut ProbeClient, records: Vec<SparseVector>, cfg: PublishCfg) -> String {
    let reply = client
        .request(&publish_request(records, cfg))
        .expect("publish transport");
    assert_eq!(reply.frame_type(), "published", "{}", reply.raw);
    reply
        .json
        .get("fingerprint")
        .and_then(|f| f.as_str().map(str::to_string))
        .expect("publish reply carries a fingerprint")
}

/// Attaches `client` as a streaming session.
pub fn attach(client: &mut ProbeClient, fingerprint: &str) -> Frame {
    let reply = client
        .request(&Request::Attach {
            fingerprint: fingerprint.to_string(),
            pinned: false,
            declared_measure: None,
        })
        .expect("attach transport");
    assert_eq!(reply.frame_type(), "attached", "{}", reply.raw);
    reply
}

/// Polls `probe` until it returns true or the deadline lapses.
pub fn wait_until(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}
