//! Satellite 2 — concurrent-connection determinism.
//!
//! N clients running interleaved probe scripts against one shared
//! corpus must produce responses bit-identical to a single sequential
//! client. The engine's per-pair estimates are canonical regardless of
//! cache warmth, and once every watched threshold has been probed once,
//! identical re-probes are answered *entirely* from the shared memo
//! pool — zero new hashes — so even the work counters are deterministic
//! under arbitrary interleaving. The suite runs at explicit
//! `parallelism` 1 and 4 (and inherits the `PLASMA_PARALLELISM` CI
//! matrix through the env default in the warm-up publish).

mod common;

use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

use common::{attach, corpus, publish};
use plasma_server::{ProbeClient, PublishCfg, Request};

const THRESHOLDS: [f64; 5] = [0.4, 0.5, 0.6, 0.7, 0.8];
const CLIENTS: usize = 4;
const ROUNDS: usize = 3;

/// One sequential client warms every threshold, then records the warmed
/// responses; N interleaved clients must reproduce them byte for byte.
fn run_at(parallelism: Option<usize>) {
    let (_service, server) = common::boot();
    let addr = server.local_addr();

    let mut sequential = ProbeClient::connect(addr).expect("connect");
    let fingerprint = publish(
        &mut sequential,
        corpus(48, 0),
        PublishCfg {
            parallelism,
            ..PublishCfg::default()
        },
    );
    attach(&mut sequential, &fingerprint);

    // Pass 1 warms the memo pool; pass 2 records the reference frame per
    // threshold — from here on, every probe at these thresholds is a
    // pure cache hit and thus fully deterministic.
    for &t in &THRESHOLDS {
        let reply = sequential
            .request(&Request::Probe { threshold: t })
            .expect("warming probe");
        assert_eq!(reply.frame_type(), "probe_result", "{}", reply.raw);
    }
    let mut reference: BTreeMap<String, String> = BTreeMap::new();
    for &t in &THRESHOLDS {
        let reply = sequential
            .request(&Request::Probe { threshold: t })
            .expect("reference probe");
        assert_eq!(
            reply.json.get("hashes_compared").and_then(|v| v.as_u64()),
            Some(0),
            "warmed re-probe must be a pure cache hit: {}",
            reply.raw
        );
        reference.insert(format!("{t}"), reply.raw);
    }

    // N clients, each probing every threshold in a client-specific
    // rotation, several rounds, all interleaved on one shared corpus.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|who| {
            let reference = reference.clone();
            let fingerprint = fingerprint.clone();
            thread::spawn(move || {
                let mut client = ProbeClient::connect(addr).expect("connect");
                attach(&mut client, &fingerprint);
                for round in 0..ROUNDS {
                    for k in 0..THRESHOLDS.len() {
                        let t = THRESHOLDS[(k + who + round) % THRESHOLDS.len()];
                        let reply = client
                            .request(&Request::Probe { threshold: t })
                            .expect("interleaved probe");
                        let expected = &reference[&format!("{t}")];
                        assert_eq!(
                            &reply.raw, expected,
                            "client {who} round {round}: interleaved probe diverged \
                             from the sequential client at threshold {t}"
                        );
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    // The sequential client, interleaved with no one anymore, still sees
    // the same frames.
    for (key, expected) in &reference {
        let t: f64 = key.parse().expect("threshold key");
        let reply = sequential
            .request(&Request::Probe { threshold: t })
            .expect("post-concurrency probe");
        assert_eq!(&reply.raw, expected, "sequential client drifted at {t}");
    }
    server.stop();
}

#[test]
fn interleaved_clients_match_sequential_at_parallelism_1() {
    run_at(Some(1));
}

#[test]
fn interleaved_clients_match_sequential_at_parallelism_4() {
    run_at(Some(4));
}

/// The env-matrix shape: `parallelism: None` resolves through
/// `PLASMA_PARALLELISM`, so the CI matrix exercises this path at 1 and
/// 4 workers without any per-call override.
#[test]
fn interleaved_clients_match_sequential_at_env_parallelism() {
    run_at(None);
}

/// Interleaved *ingest* + probe: concurrent clients race probes against
/// a growing corpus; every response must match one of the per-epoch
/// reference frames a sequential client recorded for that threshold —
/// the corpus passes through the same epochs for everyone.
#[test]
fn probes_during_growth_land_on_exact_epoch_frames() {
    let (_service, server) = common::boot();
    let addr = server.local_addr();
    let mut writer = ProbeClient::connect(addr).expect("connect");
    let fingerprint = publish(&mut writer, corpus(32, 0), PublishCfg::default());
    attach(&mut writer, &fingerprint);

    // Sequential reference: probe 0.6 warm at epoch 0 and epoch 1.
    let t = 0.6;
    for _ in 0..2 {
        writer
            .request(&Request::Probe { threshold: t })
            .expect("warm");
    }
    let epoch0 = writer
        .request(&Request::Probe { threshold: t })
        .expect("reference")
        .raw;
    writer
        .request(&Request::Ingest {
            records: corpus(8, 32),
        })
        .expect("grow");
    for _ in 0..2 {
        writer
            .request(&Request::Probe { threshold: t })
            .expect("warm");
    }
    let epoch1 = writer
        .request(&Request::Probe { threshold: t })
        .expect("reference")
        .raw;

    // A second server replays the same growth while readers hammer the
    // same threshold: every frame must be exactly the epoch-0 or the
    // epoch-1 reference — no torn epochs, no counter drift.
    let (_service2, server2) = common::boot();
    let addr2 = server2.local_addr();
    let mut writer2 = ProbeClient::connect(addr2).expect("connect");
    let fingerprint2 = publish(&mut writer2, corpus(32, 0), PublishCfg::default());
    attach(&mut writer2, &fingerprint2);
    for _ in 0..3 {
        writer2
            .request(&Request::Probe { threshold: t })
            .expect("warm");
    }
    let readers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let fingerprint2 = fingerprint2.clone();
            let epoch0 = epoch0.clone();
            let epoch1 = epoch1.clone();
            thread::spawn(move || {
                let mut client = ProbeClient::connect(addr2).expect("connect");
                attach(&mut client, &fingerprint2);
                let mut saw_epoch1 = false;
                while !saw_epoch1 {
                    let reply = client
                        .request(&Request::Probe { threshold: t })
                        .expect("racing probe");
                    let hashes = reply
                        .json
                        .get("hashes_compared")
                        .and_then(|v| v.as_u64())
                        .unwrap_or(u64::MAX);
                    if hashes == 0 {
                        assert!(
                            reply.raw == epoch0 || reply.raw == epoch1,
                            "warm probe matches neither epoch reference: {}",
                            reply.raw
                        );
                    }
                    saw_epoch1 = reply.raw == epoch1;
                    thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();
    // Let the readers land on epoch 0 first, then grow.
    thread::sleep(Duration::from_millis(50));
    writer2
        .request(&Request::Ingest {
            records: corpus(8, 32),
        })
        .expect("grow");
    // Warm epoch 1 so racing probes can reach the pure-hit reference.
    for _ in 0..2 {
        writer2
            .request(&Request::Probe { threshold: t })
            .expect("warm");
    }
    for reader in readers {
        reader.join().expect("reader thread");
    }
    server2.stop();
}
