//! Satellite 3 — fault injection: clients dying at the worst moments.
//!
//! A client disconnect — mid-watch-stream, mid-ingest-frame, or right
//! after a request it never reads the answer to — must (a) drop the
//! connection's session, (b) auto-cancel its watch registry entries,
//! and (c) leave the shared cache serving the survivors with outputs
//! identical to a history in which the victim's operations happened and
//! its subscriptions simply ended. The direct-library mirror in each
//! test is that equivalent history.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::{attach, corpus, publish, wait_until};
use plasma_core::{ApssConfig, CacheRegistry, StreamingSession};
use plasma_data::similarity::Similarity;
use plasma_server::{ProbeClient, PublishCfg, Request, Response};

/// Victim dies mid-watch-stream: its watch must auto-cancel, and the
/// survivor's subsequent delta and probe frames must be bit-identical
/// to the direct-library history where the victim's watch existed for
/// epoch 1 and was dropped before epoch 2.
#[test]
fn disconnect_mid_watch_stream_cancels_watch_and_spares_survivors() {
    let (service, server) = common::boot();
    let addr = server.local_addr();

    let mut survivor = ProbeClient::connect(addr).expect("connect");
    let fingerprint = publish(&mut survivor, corpus(30, 0), PublishCfg::default());
    attach(&mut survivor, &fingerprint);
    survivor
        .request(&Request::Watch { threshold: 0.6 })
        .expect("survivor watch");
    assert!(survivor
        .poll_event(Duration::from_secs(5))
        .expect("survivor registration delta")
        .is_some());

    let mut victim = ProbeClient::connect(addr).expect("connect");
    attach(&mut victim, &fingerprint);
    victim
        .request(&Request::Watch { threshold: 0.5 })
        .expect("victim watch");
    assert_eq!(service.watch_count(), 2);

    // Epoch 1: both watches live; the victim receives its delta stream.
    survivor
        .request(&Request::Ingest {
            records: corpus(8, 30),
        })
        .expect("epoch-1 ingest");
    let survivor_delta_1 = survivor
        .poll_event(Duration::from_secs(5))
        .expect("survivor epoch-1 delta")
        .expect("survivor epoch-1 delta arrives");
    wait_until("victim's pushed delta", || {
        victim
            .poll_event(Duration::from_millis(50))
            .ok()
            .flatten()
            .is_some()
    });

    // The victim dies mid-stream. The server must notice, drop its
    // session, and cancel its watch.
    victim.abort();
    wait_until("victim session reaped", || {
        service.session_count() == 1 && service.watch_count() == 1
    });

    // Epoch 2: only the survivor's watch fires.
    survivor
        .request(&Request::Ingest {
            records: corpus(6, 38),
        })
        .expect("epoch-2 ingest");
    let survivor_delta_2 = survivor
        .poll_event(Duration::from_secs(5))
        .expect("survivor epoch-2 delta")
        .expect("survivor epoch-2 delta arrives");
    let survivor_probe = survivor
        .request(&Request::Probe { threshold: 0.6 })
        .expect("survivor probe");

    // Direct mirror: same history, victim's watch dropped before epoch 2.
    let cfg = ApssConfig::default();
    let base = corpus(30, 0);
    let registry = CacheRegistry::new();
    let cache = registry.get_or_build(&base, Similarity::Jaccard, &cfg);
    let mut session =
        StreamingSession::from_records(base, Similarity::Jaccard, cfg).with_shared_cache(cache);
    let survivor_watch = session.watch(0.6);
    let fork = session.fork();
    let victim_watch = fork.watch(0.5);
    survivor_watch.drain();
    victim_watch.drain();
    session.ingest(&corpus(8, 30));
    let expect_1 = survivor_watch.drain();
    drop(victim_watch);
    session.ingest(&corpus(6, 38));
    let expect_2 = survivor_watch.drain();
    let expect_probe = {
        let report = session.probe(0.6);
        Response::from_probe(&report, session.epoch()).encode()
    };
    let encode_delta = |deltas: Vec<plasma_core::WatchDelta>| {
        let mut frames = deltas
            .into_iter()
            .map(|delta| Response::WatchDeltaEvent { watch_id: 0, delta }.encode());
        frames.next().expect("one delta per epoch")
    };
    assert_eq!(survivor_delta_1.raw, encode_delta(expect_1));
    assert_eq!(survivor_delta_2.raw, encode_delta(expect_2));
    assert_eq!(survivor_probe.raw, expect_probe);
    server.stop();
}

/// Victim dies mid-ingest *frame*: half a frame and no newline. The
/// partial line must be discarded — no growth, no epoch bump, survivor
/// untouched.
#[test]
fn disconnect_mid_ingest_frame_discards_the_batch() {
    let (service, server) = common::boot();
    let addr = server.local_addr();

    let mut survivor = ProbeClient::connect(addr).expect("connect");
    let fingerprint = publish(&mut survivor, corpus(24, 0), PublishCfg::default());
    attach(&mut survivor, &fingerprint);
    let before = survivor
        .request(&Request::Probe { threshold: 0.6 })
        .expect("probe before");

    // Raw socket: attach, then half an ingest frame, then vanish.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    let attach_frame = Request::Attach {
        fingerprint: fingerprint.clone(),
        pinned: false,
        declared_measure: None,
    }
    .encode();
    raw.write_all(format!("{attach_frame}\n").as_bytes())
        .expect("raw attach");
    wait_until("raw session attached", || service.session_count() == 2);
    let ingest_frame = Request::Ingest {
        records: corpus(8, 24),
    }
    .encode();
    raw.write_all(&ingest_frame.as_bytes()[..ingest_frame.len() / 2])
        .expect("half a frame");
    raw.flush().expect("flush");
    drop(raw);

    wait_until("victim session reaped", || service.session_count() == 1);
    // The survivor sees the corpus exactly as before: same epoch, and a
    // re-probe is the warmed twin of the first one.
    let after = survivor
        .request(&Request::Probe { threshold: 0.6 })
        .expect("probe after");
    assert_eq!(
        after.json.get("epoch").and_then(|e| e.as_u64()),
        before.json.get("epoch").and_then(|e| e.as_u64()),
        "a half-received ingest must not grow the corpus"
    );
    assert_eq!(
        after.json.get("pairs"),
        before.json.get("pairs"),
        "survivor's pairs changed: {}",
        after.raw
    );
    server.stop();
}

/// Victim sends a complete ingest frame and dies without reading the
/// receipt. The ingest *was* received, so it must apply — the write
/// failure on the dead socket must neither kill the server nor lose the
/// epoch — and the survivor's watch sees the delta.
#[test]
fn disconnect_after_complete_ingest_frame_still_applies() {
    let (service, server) = common::boot();
    let addr = server.local_addr();

    let mut survivor = ProbeClient::connect(addr).expect("connect");
    let fingerprint = publish(&mut survivor, corpus(24, 0), PublishCfg::default());
    attach(&mut survivor, &fingerprint);
    survivor
        .request(&Request::Watch { threshold: 0.6 })
        .expect("survivor watch");
    survivor
        .poll_event(Duration::from_secs(5))
        .expect("registration delta")
        .expect("registration delta arrives");

    let mut raw = TcpStream::connect(addr).expect("connect raw");
    let attach_frame = Request::Attach {
        fingerprint: fingerprint.clone(),
        pinned: false,
        declared_measure: None,
    }
    .encode();
    let ingest_frame = Request::Ingest {
        records: corpus(8, 24),
    }
    .encode();
    raw.write_all(format!("{attach_frame}\n{ingest_frame}\n").as_bytes())
        .expect("attach + full ingest frame");
    raw.flush().expect("flush");
    // Half-close: the frames are on the wire, the sender is gone, and it
    // will never read a receipt. (A full close here would race the
    // server's read of the buffered frames; FIN-after-data is the
    // deterministic version of the same death.)
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");

    // The applied ingest reaches the survivor as a pushed delta.
    let delta = survivor
        .poll_event(Duration::from_secs(10))
        .expect("pushed delta read")
        .expect("epoch-1 delta arrives despite the dead ingester");
    assert_eq!(delta.json.get("epoch").and_then(|e| e.as_u64()), Some(1));
    let probe = survivor
        .request(&Request::Probe { threshold: 0.6 })
        .expect("survivor probe");
    assert_eq!(
        probe.json.get("epoch").and_then(|e| e.as_u64()),
        Some(1),
        "the complete frame must have grown the corpus: {}",
        probe.raw
    );
    wait_until("victim session reaped", || service.session_count() == 1);
    server.stop();
}
