//! Satellite 4 — protocol error paths.
//!
//! Every failure mode must come back as a structured
//! `{"type":"error","code":...}` frame on a connection that keeps
//! serving — never a panic, never a silent close. The suite walks the
//! closed set of error codes over a live TCP server and, after every
//! error, proves the same connection still answers `health`.

mod common;

use std::time::Duration;

use common::{attach, corpus, publish};
use plasma_server::{Frame, ProbeClient, PublishCfg, Request};

/// Asserts the next reply is an error frame with `code`, and that the
/// connection still serves afterwards.
fn expect_error(client: &mut ProbeClient, sent: &str, code: &str) -> Frame {
    let reply = client
        .read_reply(Duration::from_secs(10))
        .expect("transport alive")
        .unwrap_or_else(|| panic!("connection silently closed after {sent}"));
    assert_eq!(reply.frame_type(), "error", "after {sent}: {}", reply.raw);
    assert_eq!(
        reply.error_code(),
        Some(code),
        "after {sent}: {}",
        reply.raw
    );
    assert!(
        reply.json.get("message").is_some(),
        "errors carry a message: {}",
        reply.raw
    );
    let health = client
        .request(&Request::Health)
        .expect("health after error");
    assert_eq!(
        health.frame_type(),
        "health",
        "connection must keep serving after {sent}"
    );
    reply
}

fn send_expect_error(client: &mut ProbeClient, frame: &str, code: &str) -> Frame {
    client.send_raw(frame).expect("send");
    expect_error(client, frame, code)
}

#[test]
fn malformed_frames_and_unknown_verbs() {
    let (_service, server) = common::boot();
    let mut client = ProbeClient::connect(server.local_addr()).expect("connect");

    send_expect_error(&mut client, "this is not json", "malformed_frame");
    send_expect_error(&mut client, "[1,2,3]", "malformed_frame");
    send_expect_error(&mut client, "{\"no\":\"verb\"}", "malformed_frame");
    send_expect_error(
        &mut client,
        "{\"verb\":\"probe\"} trailing",
        "malformed_frame",
    );
    // A deeply nested bomb is refused by the depth bound, not the stack.
    let bomb = format!("{}1{}", "[".repeat(4000), "]".repeat(4000));
    send_expect_error(&mut client, &bomb, "malformed_frame");
    send_expect_error(&mut client, "{\"verb\":\"frobnicate\"}", "unknown_verb");
    server.stop();
}

#[test]
fn bad_arguments_are_bad_request() {
    let (_service, server) = common::boot();
    let mut client = ProbeClient::connect(server.local_addr()).expect("connect");

    send_expect_error(&mut client, "{\"verb\":\"probe\"}", "bad_request");
    send_expect_error(
        &mut client,
        "{\"verb\":\"probe\",\"threshold\":1.5}",
        "bad_request",
    );
    send_expect_error(
        &mut client,
        "{\"verb\":\"ingest\",\"records\":[[[0]]]}",
        "bad_request",
    );
    send_expect_error(
        &mut client,
        "{\"verb\":\"publish\",\"measure\":\"euclidean\",\"records\":[]}",
        "bad_request",
    );
    send_expect_error(
        &mut client,
        "{\"verb\":\"attach\",\"fingerprint\":\"tooshort\"}",
        "bad_request",
    );
    server.stop();
}

#[test]
fn session_state_errors() {
    let (_service, server) = common::boot();
    let addr = server.local_addr();
    let mut client = ProbeClient::connect(addr).expect("connect");

    // Session verbs before attach.
    for req in [
        Request::Probe { threshold: 0.5 },
        Request::Ingest {
            records: corpus(2, 0),
        },
        Request::Watch { threshold: 0.5 },
    ] {
        client.send_raw(&req.encode()).expect("send");
        expect_error(&mut client, &req.encode(), "no_session");
    }

    // Attach to a fingerprint nothing published.
    let ghost = "0123456789abcdef0123456789abcdef";
    client
        .send_raw(
            &Request::Attach {
                fingerprint: ghost.into(),
                pinned: false,
                declared_measure: None,
            }
            .encode(),
        )
        .expect("send");
    expect_error(&mut client, "attach(ghost)", "unknown_fingerprint");

    // Double attach.
    let fingerprint = publish(&mut client, corpus(20, 0), PublishCfg::default());
    attach(&mut client, &fingerprint);
    client
        .send_raw(
            &Request::Attach {
                fingerprint: fingerprint.clone(),
                pinned: false,
                declared_measure: None,
            }
            .encode(),
        )
        .expect("send");
    expect_error(&mut client, "second attach", "already_attached");

    // Pinned sessions are probe-only.
    let mut pinned = ProbeClient::connect(addr).expect("connect");
    let reply = pinned
        .request(&Request::Attach {
            fingerprint: fingerprint.clone(),
            pinned: true,
            declared_measure: None,
        })
        .expect("pinned attach");
    assert_eq!(reply.frame_type(), "attached", "{}", reply.raw);
    for req in [
        Request::Ingest {
            records: corpus(2, 0),
        },
        Request::Watch { threshold: 0.5 },
    ] {
        pinned.send_raw(&req.encode()).expect("send");
        expect_error(&mut pinned, &req.encode(), "bad_request");
    }
    server.stop();
}

/// The engine's stale-prefix guard, over the wire: a pinned session
/// probing a corpus another connection has grown gets `stale_session` —
/// a structured error on a live connection, not a dead server.
#[test]
fn stale_pinned_probe_is_stale_session() {
    let (_service, server) = common::boot();
    let addr = server.local_addr();
    let mut writer = ProbeClient::connect(addr).expect("connect");
    let fingerprint = publish(&mut writer, corpus(20, 0), PublishCfg::default());
    attach(&mut writer, &fingerprint);

    let mut pinned = ProbeClient::connect(addr).expect("connect");
    pinned
        .request(&Request::Attach {
            fingerprint: fingerprint.clone(),
            pinned: true,
            declared_measure: None,
        })
        .expect("pinned attach");

    // Sanity: the pinned session probes fine before growth.
    let ok = pinned
        .request(&Request::Probe { threshold: 0.5 })
        .expect("fresh pinned probe");
    assert_eq!(ok.frame_type(), "probe_result", "{}", ok.raw);

    writer
        .request(&Request::Ingest {
            records: corpus(4, 20),
        })
        .expect("grow");
    pinned
        .send_raw(&Request::Probe { threshold: 0.5 }.encode())
        .expect("send");
    let stale = expect_error(&mut pinned, "stale pinned probe", "stale_session");
    assert!(
        stale
            .json
            .get("message")
            .and_then(|m| m.as_str())
            .is_some_and(|m| m.contains("re-sync")),
        "the engine's guidance survives the boundary: {}",
        stale.raw
    );

    // The connection recovers by re-attaching.
    let detached = pinned.request(&Request::Detach).expect("detach");
    assert_eq!(detached.frame_type(), "detached");
    let again = pinned
        .request(&Request::Attach {
            fingerprint,
            pinned: true,
            declared_measure: None,
        })
        .expect("re-attach");
    assert_eq!(again.frame_type(), "attached", "{}", again.raw);
    let reprobe = pinned
        .request(&Request::Probe { threshold: 0.5 })
        .expect("re-probe");
    assert_eq!(reprobe.frame_type(), "probe_result", "{}", reprobe.raw);
    server.stop();
}

/// A measure mismatch against the shared cache trips the engine's
/// hash-family assertion; the handler returns it as `engine_panic`.
#[test]
fn measure_mismatch_is_engine_panic() {
    let (_service, server) = common::boot();
    let mut client = ProbeClient::connect(server.local_addr()).expect("connect");
    let fingerprint = publish(&mut client, corpus(16, 0), PublishCfg::default());
    client
        .send_raw(
            &Request::Attach {
                fingerprint,
                pinned: true,
                declared_measure: Some(plasma_data::similarity::Similarity::Cosine),
            }
            .encode(),
        )
        .expect("send");
    let reply = expect_error(&mut client, "cross-measure attach", "engine_panic");
    assert!(
        reply
            .json
            .get("message")
            .and_then(|m| m.as_str())
            .is_some_and(|m| m.contains("hash family")),
        "{}",
        reply.raw
    );
    server.stop();
}

/// Draining refuses new work but answers the refusal in-protocol.
#[test]
fn draining_rejects_new_publishes() {
    let (_service, server) = common::boot();
    let addr = server.local_addr();
    let mut client = ProbeClient::connect(addr).expect("connect");
    let shutting = client.request(&Request::Shutdown).expect("shutdown");
    assert_eq!(shutting.frame_type(), "shutting_down");
    client
        .send_raw(&common::publish_request(corpus(8, 0), PublishCfg::default()).encode())
        .expect("send");
    let reply = client
        .read_reply(Duration::from_secs(10))
        .expect("transport alive")
        .expect("an answer even while draining");
    assert_eq!(reply.error_code(), Some("draining"), "{}", reply.raw);
    let ready = client.request(&Request::Ready).expect("ready");
    assert_eq!(
        ready.json.get("ready").and_then(|r| r.as_bool()),
        Some(false),
        "{}",
        ready.raw
    );
    drop(client);
    server.wait();
}
