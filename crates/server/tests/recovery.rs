//! Warm-restart recovery, pinned at the serving layer.
//!
//! The durability contract is stronger than "the data survives": a
//! restarted server must be *indistinguishable* from one that never
//! died. These suites build an ingest history against a durable service
//! (publish + WAL-logged ingests + optional mid-history snapshot), kill
//! it, boot a fresh service from the same data directory, and require
//! every served frame — probe results, watch acks, registration deltas,
//! ingest receipts and their watch deltas — to be byte-identical to a
//! cold-built server that replayed the same operations in memory.
//! Refusals are pinned too: a corpus whose persisted state cannot be
//! verified is reported with a structured error and skipped, while the
//! rest of the directory still serves.

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use common::corpus;
use plasma_data::similarity::Similarity;
use plasma_server::{
    Connection, ProbeClient, ProbeServer, ProbeService, PublishCfg, Request, Response,
};

/// A self-cleaning temp directory under the system temp root.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "plasma-serve-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn test_cfg() -> PublishCfg {
    PublishCfg {
        n_hashes: Some(64),
        bands: Some((8, 8)),
        ..PublishCfg::default()
    }
}

fn publish(
    conn: &Connection,
    name: &str,
    records: Vec<plasma_data::vector::SparseVector>,
) -> String {
    let outcome = conn.handle(Request::Publish {
        name: name.into(),
        measure: Similarity::Jaccard,
        records,
        cfg: test_cfg(),
    });
    match outcome.response {
        Response::Published { fingerprint, .. } => fingerprint,
        other => panic!("publish failed: {}", other.encode()),
    }
}

fn attach(conn: &Connection, fingerprint: &str) -> String {
    let outcome = conn.handle(Request::Attach {
        fingerprint: fingerprint.to_string(),
        pinned: false,
        declared_measure: None,
    });
    match &outcome.response {
        Response::Attached { .. } => outcome.response.encode(),
        other => panic!("attach failed: {}", other.encode()),
    }
}

fn ingest_ok(conn: &Connection, records: Vec<plasma_data::vector::SparseVector>) {
    let outcome = conn.handle(Request::Ingest { records });
    assert!(
        matches!(outcome.response, Response::Ingested { .. }),
        "ingest failed: {}",
        outcome.response.encode()
    );
}

/// Runs the same client script against both connections and asserts
/// every frame — responses and pushed events alike — is byte-identical.
fn assert_script_is_bit_identical(warm: &Connection, cold: &Connection, label: &str) {
    let script = vec![
        Request::Probe { threshold: 0.8 },
        Request::Probe { threshold: 0.5 },
        Request::Watch { threshold: 0.6 },
        Request::Ingest {
            records: corpus(8, 1000),
        },
        Request::Probe { threshold: 0.6 },
        Request::Unwatch { watch_id: 0 },
        Request::MemoryStats,
    ];
    for request in script {
        let w = warm.handle(request.clone());
        let c = cold.handle(request.clone());
        assert_eq!(
            w.response.encode(),
            c.response.encode(),
            "{label}: response diverged on {}",
            request.encode()
        );
        let w_events: Vec<String> = w.events.iter().map(Response::encode).collect();
        let c_events: Vec<String> = c.events.iter().map(Response::encode).collect();
        assert_eq!(
            w_events,
            c_events,
            "{label}: event frames diverged on {}",
            request.encode()
        );
    }
}

#[test]
fn restarted_server_serves_bit_identical_frames_at_every_epoch() {
    for stage in 0..=2usize {
        let dir = TempDir::new("stages");
        let batches: Vec<_> = (0..stage).map(|i| corpus(8, 32 + 8 * i)).collect();

        // Life 1: durable service accumulates the history, snapshotting
        // mid-way at stage 2 so recovery exercises snapshot + WAL tail.
        let fingerprint = {
            let (service, reports) =
                ProbeService::with_data_dir(&dir.0).expect("boot durable service");
            assert!(reports.is_empty(), "fresh directory has nothing to recover");
            let service = Arc::new(service);
            let conn = Connection::new(service.clone());
            let fp = publish(&conn, "stages", corpus(32, 0));
            attach(&conn, &fp);
            for (i, batch) in batches.iter().enumerate() {
                ingest_ok(&conn, batch.clone());
                if i == 0 && stage == 2 {
                    for (_, outcome) in service.snapshot_now() {
                        outcome.expect("mid-history snapshot");
                    }
                }
            }
            fp
            // Everything dropped here: the "crash".
        };

        // Life 2: a fresh process over the same directory.
        let (warm_service, reports) =
            ProbeService::with_data_dir(&dir.0).expect("boot recovered service");
        let warm_service = Arc::new(warm_service);
        assert_eq!(reports.len(), 1, "stage {stage}: one corpus to recover");
        let report = &reports[0];
        assert_eq!(report.fingerprint, fingerprint);
        let stats = report.outcome.as_ref().expect("recovery succeeds");
        assert_eq!(stats.name, "stages");
        assert_eq!(stats.records, 32 + 8 * stage);
        assert_eq!(stats.epoch, stage as u64);

        // Reference: a cold server that never died, same history.
        let cold_service = Arc::new(ProbeService::new());
        let cold_setup = Connection::new(cold_service.clone());
        let cold_fp = publish(&cold_setup, "stages", corpus(32, 0));
        assert_eq!(cold_fp, fingerprint, "fingerprint is lineage-stable");
        attach(&cold_setup, &cold_fp);
        for batch in &batches {
            ingest_ok(&cold_setup, batch.clone());
        }
        cold_setup.close();

        let warm = Connection::new(warm_service.clone());
        let cold = Connection::new(cold_service.clone());
        assert_eq!(
            attach(&warm, &fingerprint),
            attach(&cold, &fingerprint),
            "stage {stage}: attach frames diverged"
        );
        assert_script_is_bit_identical(&warm, &cold, &format!("stage {stage}"));
    }
}

#[test]
fn batch_logged_but_never_acked_survives_the_restart() {
    let dir = TempDir::new("unacked");
    let fingerprint = {
        let (service, _) = ProbeService::with_data_dir(&dir.0).expect("boot durable service");
        let service = Arc::new(service);
        let conn = Connection::new(service.clone());
        let fp = publish(&conn, "unacked", corpus(24, 0));
        attach(&conn, &fp);
        // The ingest is handled — WAL append happens before the ack is
        // even built — but the "server" dies before the Interaction
        // would reach the client. The client never saw an ack; the
        // batch must still be there after restart, because the append
        // preceded it.
        let _unsent = conn.handle(Request::Ingest {
            records: corpus(8, 24),
        });
        fp
    };
    let (service, reports) = ProbeService::with_data_dir(&dir.0).expect("boot recovered service");
    let stats = reports[0].outcome.as_ref().expect("recovery succeeds");
    assert_eq!(stats.records, 32, "the logged-but-unacked batch is served");
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.replayed_entries, 1);
    assert!(!stats.wal_tail_discarded, "the entry was fully written");

    // And the recovered corpus is the cold-built one, frame for frame.
    let cold_service = Arc::new(ProbeService::new());
    let cold_setup = Connection::new(cold_service.clone());
    let fp = publish(&cold_setup, "unacked", corpus(24, 0));
    assert_eq!(fp, fingerprint);
    attach(&cold_setup, &fp);
    ingest_ok(&cold_setup, corpus(8, 24));
    cold_setup.close();
    let warm = Connection::new(Arc::new(service));
    let cold = Connection::new(cold_service);
    attach(&warm, &fingerprint);
    attach(&cold, &fingerprint);
    assert_script_is_bit_identical(&warm, &cold, "unacked batch");
}

#[test]
fn recovery_refusals_are_structured_and_per_corpus() {
    let dir = TempDir::new("refusal");
    let (fp_a, fp_b) = {
        let (service, _) = ProbeService::with_data_dir(&dir.0).expect("boot durable service");
        let service = Arc::new(service);
        let conn = Connection::new(service.clone());
        let fp_a = publish(&conn, "corpus-a", corpus(32, 0));
        conn.handle(Request::Detach);
        let conn_b = Connection::new(service.clone());
        let fp_b = publish(&conn_b, "corpus-b", corpus(20, 500));
        (fp_a, fp_b)
    };
    assert_ne!(fp_a, fp_b);
    // Sabotage corpus A's meta: a different seed means recovery would
    // re-sketch replays differently, so the config guard must refuse.
    let meta_path = dir.0.join(&fp_a).join("meta.json");
    let meta = std::fs::read_to_string(&meta_path).expect("read meta");
    assert!(
        meta.contains("\"cfg\":{"),
        "fixture meta shape changed: {meta}"
    );
    let sabotaged = meta.replace("\"cfg\":{", "\"cfg\":{\"seed\":12345,");
    std::fs::write(&meta_path, sabotaged).expect("write sabotaged meta");

    let (service, reports) = ProbeService::with_data_dir(&dir.0).expect("service still boots");
    let service = Arc::new(service);
    assert_eq!(reports.len(), 2);
    for report in &reports {
        if report.fingerprint == fp_a {
            let err = report
                .outcome
                .as_ref()
                .expect_err("sabotaged corpus refused");
            assert!(err.contains("seed"), "refusal names the mismatch: {err}");
        } else {
            assert_eq!(report.fingerprint, fp_b);
            assert!(report.outcome.is_ok(), "healthy corpus still recovers");
        }
    }
    // The refused corpus is not served; the healthy one is.
    let conn = Connection::new(service);
    let refused = conn.handle(Request::Attach {
        fingerprint: fp_a,
        pinned: false,
        declared_measure: None,
    });
    match refused.response {
        Response::Error { code, .. } => {
            assert_eq!(code, plasma_server::ErrorCode::UnknownFingerprint)
        }
        other => panic!("expected unknown_fingerprint, got {}", other.encode()),
    }
    attach(&conn, &fp_b);
}

#[test]
fn tcp_drain_snapshots_so_the_next_boot_replays_nothing() {
    let dir = TempDir::new("tcp");
    let fingerprint = {
        let (service, _) = ProbeService::with_data_dir(&dir.0).expect("boot durable service");
        let server =
            ProbeServer::start(Arc::new(service), "127.0.0.1:0").expect("bind ephemeral port");
        let mut client = ProbeClient::connect(server.local_addr()).expect("connect");
        let reply = client
            .request(&Request::Publish {
                name: "tcp".into(),
                measure: Similarity::Jaccard,
                records: corpus(24, 0),
                cfg: test_cfg(),
            })
            .expect("publish");
        assert_eq!(reply.frame_type(), "published", "{}", reply.raw);
        let fingerprint = reply
            .json
            .get("fingerprint")
            .and_then(|f| f.as_str().map(str::to_string))
            .expect("fingerprint");
        let attached = client
            .request(&Request::Attach {
                fingerprint: fingerprint.clone(),
                pinned: false,
                declared_measure: None,
            })
            .expect("attach");
        assert_eq!(attached.frame_type(), "attached", "{}", attached.raw);
        let ingested = client
            .request(&Request::Ingest {
                records: corpus(8, 24),
            })
            .expect("ingest");
        assert_eq!(ingested.frame_type(), "ingested", "{}", ingested.raw);
        let bye = client.request(&Request::Shutdown).expect("shutdown");
        assert_eq!(bye.frame_type(), "shutting_down", "{}", bye.raw);
        drop(client);
        // wait() joins the snapshotter, whose drain path takes the
        // final snapshot and truncates the WAL.
        server.wait();
        fingerprint
    };
    let wal = std::fs::read(dir.0.join(&fingerprint).join("wal.bin")).expect("wal exists");
    assert_eq!(
        wal.len() as u64,
        plasma_core::WAL_HEADER_BYTES,
        "drain snapshot truncated the log"
    );
    let (_service, reports) = ProbeService::with_data_dir(&dir.0).expect("boot recovered service");
    let stats = reports[0].outcome.as_ref().expect("recovery succeeds");
    assert_eq!(stats.records, 32);
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.replayed_entries, 0, "nothing left to replay");

    // Second drop: the directory is intact for yet another boot (the
    // `_service` above held open WAL handles; closing is clean).
}
