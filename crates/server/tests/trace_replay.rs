//! Satellite 1 — the trace-replay differential suite.
//!
//! The serving layer's contract is that the wire adds *nothing* to the
//! engine's semantics. Three equalities pin it:
//!
//! 1. **Handler vs library**: a script recorded through the
//!    transport-agnostic handler produces, frame for frame, the exact
//!    encodings of direct `StreamingSession` calls with the same
//!    history — probes, ingest receipts, and watch deltas at every
//!    epoch.
//! 2. **Wire vs handler**: replaying the recorded script through a live
//!    TCP server against a fresh service reproduces every frame byte
//!    for byte (`Trace::replay_over_tcp`).
//! 3. **Storage round-trip**: the JSON-lines form of a trace
//!    deserializes to the identical trace, so stored traces are durable
//!    regression artifacts.

mod common;

use std::sync::Arc;

use common::corpus;
use plasma_core::{ApssConfig, CacheRegistry, StreamingSession};
use plasma_data::similarity::Similarity;
use plasma_server::{
    ProbeServer, ProbeService, PublishCfg, Request, Response, Trace, TraceRecorder,
};

/// The canonical script: every served verb, two growth epochs, probes
/// at every epoch, a watch registered before the first ingest.
fn script(fingerprint_of: impl Fn(&[plasma_data::vector::SparseVector]) -> String) -> Vec<Request> {
    let base = corpus(30, 0);
    let fingerprint = fingerprint_of(&base);
    vec![
        Request::Publish {
            name: "trace-corpus".into(),
            measure: Similarity::Jaccard,
            records: base,
            cfg: PublishCfg::default(),
        },
        Request::Attach {
            fingerprint,
            pinned: false,
            declared_measure: Some(Similarity::Jaccard),
        },
        Request::Watch { threshold: 0.6 },
        Request::Probe { threshold: 0.5 },
        Request::Ingest {
            records: corpus(8, 30),
        },
        Request::Probe { threshold: 0.5 },
        Request::Ingest {
            records: corpus(6, 38),
        },
        Request::Probe { threshold: 0.75 },
        Request::MemoryStats,
        Request::Health,
        Request::Detach,
    ]
}

fn record_script() -> Trace {
    let service = Arc::new(ProbeService::new());
    let mut recorder = TraceRecorder::new(service);
    let cfg = PublishCfg::default().to_apss_config();
    for request in script(|records| {
        plasma_server::protocol::fingerprint_hex(CacheRegistry::fingerprint(
            records,
            Similarity::Jaccard,
            &cfg,
        ))
    }) {
        recorder.apply(request);
    }
    recorder.finish()
}

/// Equality 1: every recorded frame is the canonical encoding of the
/// equivalent direct library call.
#[test]
fn recorded_frames_equal_direct_library_calls() {
    let trace = record_script();
    assert_eq!(trace.entries.len(), 11);

    // The same history, directly against the engine, mirroring how the
    // service builds a corpus: registry cache + streaming session.
    let cfg = ApssConfig::default();
    let base = corpus(30, 0);
    let registry = CacheRegistry::new();
    let cache = registry.get_or_build(&base, Similarity::Jaccard, &cfg);
    let mut session =
        StreamingSession::from_records(base, Similarity::Jaccard, cfg).with_shared_cache(cache);

    // Entry 2: watch registration — ack plus the full answer at epoch 0.
    let watch = session.watch(0.6);
    let expect_deltas = |watch: &plasma_core::WatchHandle| {
        watch
            .drain()
            .into_iter()
            .map(|delta| Response::WatchDeltaEvent { watch_id: 0, delta }.encode())
            .collect::<Vec<_>>()
    };
    assert_eq!(trace.entries[2].events, expect_deltas(&watch));

    // Entries 3..8: probe/ingest alternation at epochs 0, 1, 2.
    let probe_frame = |session: &mut StreamingSession, threshold: f64| {
        let report = session.probe(threshold);
        let epoch = session.epoch();
        Response::from_probe(&report, epoch).encode()
    };
    assert_eq!(trace.entries[3].response, probe_frame(&mut session, 0.5));

    let ingest_frame = |session: &mut StreamingSession,
                        batch: &[plasma_data::vector::SparseVector]| {
        let report = session.ingest(batch);
        Response::Ingested {
            records_added: report.records_added,
            total_records: report.total_records,
            epoch: report.epoch,
            carried_memos: report.carried_memos,
        }
        .encode()
    };
    assert_eq!(
        trace.entries[4].response,
        ingest_frame(&mut session, &corpus(8, 30))
    );
    assert_eq!(
        trace.entries[4].events,
        expect_deltas(&watch),
        "epoch-1 watch delta rides the ingest receipt"
    );
    assert_eq!(trace.entries[5].response, probe_frame(&mut session, 0.5));
    assert_eq!(
        trace.entries[6].response,
        ingest_frame(&mut session, &corpus(6, 38))
    );
    assert_eq!(
        trace.entries[6].events,
        expect_deltas(&watch),
        "epoch-2 watch delta rides the ingest receipt"
    );
    assert_eq!(trace.entries[7].response, probe_frame(&mut session, 0.75));

    // Entry 8: memory stats match the shared cache's own accounting.
    let stats = session
        .shared_cache()
        .expect("cache attached")
        .memory_stats();
    let expected = Response::MemoryStatsResult {
        scope: "corpus".into(),
        entries: stats.entries,
        memo_bytes: stats.memo_bytes,
        sketch_bytes: stats.sketch_bytes,
        bucket_cache_bytes: stats.bucket_cache_bytes,
        bucket_build_records: stats.bucket_build_records,
        capacity_bytes: stats.capacity_bytes,
        evicted_entries: stats.evicted_entries,
        cache_hits: stats.cache_hits,
    };
    assert_eq!(trace.entries[8].response, expected.encode());
}

/// Equality 2: the wire reproduces the recording byte for byte — every
/// response and every watch-delta event frame, at every epoch.
#[test]
fn replay_over_tcp_is_bit_identical() {
    let trace = record_script();
    let (_service, server) = common::boot();
    let addr = server.local_addr();
    trace
        .replay_over_tcp(addr)
        .unwrap_or_else(|divergence| panic!("{divergence}"));
    server.stop();
}

/// Replaying on a *warmed* server must diverge in the work counters —
/// the proof that the bit-identity above is a real assertion and not a
/// comparison that never could fail.
#[test]
fn replay_against_warm_state_diverges() {
    let trace = record_script();
    let (_service, server) = common::boot();
    let addr = server.local_addr();
    trace
        .replay_over_tcp(addr)
        .expect("first replay, fresh server");
    let second = trace.replay_over_tcp(addr);
    let divergence = second.expect_err("second replay hits warm memos");
    assert!(
        divergence.contains("diverged"),
        "unexpected failure shape: {divergence}"
    );
    server.stop();
}

/// Equality 3: the JSON-lines serialization round-trips exactly.
#[test]
fn trace_jsonl_round_trips() {
    let trace = record_script();
    let stored = trace.to_jsonl();
    let reloaded = Trace::from_jsonl(&stored).expect("stored trace parses");
    assert_eq!(reloaded, trace);
}

/// A trace recorded in one process replays against a server in the same
/// suite even when the server was built from the serialized form — the
/// end-to-end shape a stored regression trace goes through.
#[test]
fn stored_trace_replays_over_tcp() {
    let stored = record_script().to_jsonl();
    let reloaded = Trace::from_jsonl(&stored).expect("stored trace parses");
    let service = Arc::new(ProbeService::new());
    let server = ProbeServer::start(service, "127.0.0.1:0").expect("bind");
    reloaded
        .replay_over_tcp(server.local_addr())
        .unwrap_or_else(|divergence| panic!("{divergence}"));
    server.stop();
}
