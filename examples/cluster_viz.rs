//! De-cluttered parallel-coordinates cluster visualization (Ch. 5):
//! reorder dimensions to minimize line crossings, then bend lines through
//! energy-optimized assistant coordinates so clusters separate visually.
//!
//! ```sh
//! cargo run --release --example cluster_viz
//! # → writes cluster_viz_before.svg / cluster_viz_after.svg
//! ```

use plasma_hd::data::datasets::catalog;
use plasma_hd::parcoords::crossings::{crossing_matrix, total_crossings};
use plasma_hd::parcoords::energy::EnergyConfig;
use plasma_hd::parcoords::order::{order_dimensions, OrderMethod};
use plasma_hd::parcoords::svg::{render_energy, render_polylines, Layout};

fn main() {
    // Wine-like: 178 records, 13 attributes, 4 display clusters (Fig 5.9).
    let entry = catalog::parcoords_catalog()
        .into_iter()
        .find(|e| e.name == "wine")
        .expect("wine in catalog");
    let (rows, labels) = entry.generate_rows(5);
    println!(
        "dataset: {} ({} rows × {} attributes, {} clusters)",
        entry.name,
        rows.len(),
        entry.attributes,
        entry.figure_clusters
    );

    // 1. Count pairwise crossings (O(n log n) per pair) and reorder the
    //    coordinates — the metric Hamiltonian-path 2-approximation.
    let matrix = crossing_matrix(&rows);
    let original: Vec<usize> = (0..entry.attributes).collect();
    let ordered = order_dimensions(&matrix, OrderMethod::MstApprox);
    let exact = order_dimensions(&matrix, OrderMethod::Exact); // d=13: feasible
    println!(
        "crossings: original order {}, MST-approx {}, exact {}",
        total_crossings(&matrix, &original),
        total_crossings(&matrix, &ordered),
        total_crossings(&matrix, &exact),
    );

    // 2. Render before (plain polylines, original order) and after
    //    (reordered + energy-reduced assistant coordinates + Bézier).
    let before = render_polylines(&rows, &labels, &original, Layout::default());
    std::fs::write("cluster_viz_before.svg", before).expect("write before svg");
    let after = render_energy(
        &rows,
        &labels,
        &exact,
        EnergyConfig::default(), // α = β = γ = 1/3, the paper's setting
        Layout::default(),
    );
    std::fs::write("cluster_viz_after.svg", after).expect("write after svg");
    println!("wrote cluster_viz_before.svg and cluster_viz_after.svg");
    println!("(open them side by side: same-cluster lines merge, clusters repel)");
}
