//! Graph-compressibility probing with LAM (§4.6): sweep LAM's compression
//! ratio over similarity thresholds to find where the data's cluster
//! structure forms and dissolves — without picking a clustering algorithm
//! or parameters first.
//!
//! ```sh
//! cargo run --release --example compressibility_probe
//! ```

use plasma_hd::data::datasets::catalog;
use plasma_hd::lam::graph_compress::{compression_curve, inflection_points};
use plasma_hd::lam::miner::LamConfig;

fn main() {
    // A corpus with planted topics plus template near-duplicates.
    let dataset = catalog::rcv1_like(0.04, 11);
    println!("dataset: {} ({} documents)\n", dataset.name, dataset.len());

    let thresholds: Vec<f64> = (1..=17).map(|k| 0.05 * k as f64).collect();
    let curve = compression_curve(
        &dataset.records,
        dataset.measure,
        &thresholds,
        &LamConfig::default(),
    );

    println!("threshold   edges   LAM compression ratio");
    for p in &curve {
        let bar = "#".repeat(((p.ratio - 1.0) * 40.0).max(0.0) as usize);
        println!(
            "  {:.2}    {:>7}   {:.3} {bar}",
            p.threshold, p.edges, p.ratio
        );
    }

    let knees = inflection_points(&curve, 3);
    println!("\nphase shifts (inflection points) at thresholds: {knees:?}");
    println!("→ these are the thresholds worth probing next with the full session workflow;");
    println!("  rising ratio = cohesive clusters forming, falling = structure dissolving (§4.6).");
}
