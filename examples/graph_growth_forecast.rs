//! Forecasting expensive measures of dense graphs from sparse evidence
//! (Ch. 3): measure a small node sample across all densities plus the
//! cheap sparse half of the real graph, then predict the dense half.
//!
//! ```sh
//! cargo run --release --example graph_growth_forecast
//! ```

use plasma_hd::data::datasets::catalog;
use plasma_hd::data::similarity::Similarity;
use plasma_hd::graph::measures::MeasureKind;
use plasma_hd::growth::eval::run_growth_experiment;
use plasma_hd::growth::sampling::SamplingMethod;

fn main() {
    let entry = &catalog::growth_catalog()[2]; // image-segmentation-like
    let dataset = entry.generate(0.25, 3);
    println!(
        "dataset: {} ({} records, {} attributes)\n",
        entry.name,
        dataset.len(),
        entry.attributes
    );

    let out = run_growth_experiment(
        &dataset.records,
        Similarity::Cosine,
        MeasureKind::Triangles,
        SamplingMethod::Random,
        dataset.len() / 4,
        3,
    );

    println!("dense-half triangle counts — predicted vs measured:");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "progress", "truth", "TS", "Regression"
    );
    for (k, &u) in out.test_progress.iter().enumerate() {
        println!(
            "{:>10.2} {:>14.0} {:>14.0} {:>14.0}",
            u, out.truth[k], out.ts.predicted[k], out.reg.predicted[k]
        );
    }

    let ts = out.ts_errors();
    let reg = out.reg_errors();
    println!(
        "\nlog-space mean relative error: TS {:.3} (σ {:.3}) | Regression {:.3} (σ {:.3})",
        ts.mean, ts.std_dev, reg.mean, reg.std_dev
    );
    println!(
        "training cost {:.0} ms vs dense-half measurement cost {:.0} ms → {:.1}x speedup",
        out.train_seconds * 1e3,
        out.dense_seconds * 1e3,
        out.speedup()
    );
    println!("\n(the paper's Table 3.2: regression errors of 0.3%–3% at 3.7x–117x speedups)");
}
