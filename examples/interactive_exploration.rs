//! The §2.2.2 interactive scenario end to end: a user explores a corpus's
//! connectivity structure guided by the Cumulative APSS Graph, instead of
//! sweeping every threshold.
//!
//! ```sh
//! cargo run --release --example interactive_exploration
//! ```

use std::time::Instant;

use plasma_hd::core::apss::{apss, ApssConfig};
use plasma_hd::core::plot;
use plasma_hd::core::session::Session;
use plasma_hd::data::datasets::catalog;

fn main() {
    let dataset = catalog::rcv1_like(0.05, 7);
    println!(
        "corpus: {} documents, vocabulary {}, avg {:.0} terms/doc\n",
        dataset.len(),
        dataset.dim,
        dataset.avg_len()
    );
    let cfg = ApssConfig {
        exact_on_accept: true,
        ..ApssConfig::default()
    };

    // --- The guided walk -------------------------------------------------
    let guided_start = Instant::now();
    let mut session = Session::new(&dataset, cfg);

    println!("step 1: user probes a high threshold (0.9) to see duplicates…");
    let r1 = session.probe(0.9);
    println!(
        "  {} near-duplicate pairs, {:.1}s (sketching {:.1}s of it)",
        r1.pairs.len(),
        r1.seconds,
        r1.sketch_seconds
    );

    let knee = session.suggest_next_threshold().expect("curve built");
    println!("step 2: the cumulative curve shows a knee near t = {knee:.2}; user probes it…");
    let r2 = session.probe(knee);
    println!(
        "  {} pairs, {:.2}s — {} of {} evaluations answered from the knowledge cache",
        r2.pairs.len(),
        r2.seconds,
        r2.cache_hits,
        r2.candidates
    );

    let cue = session.triangle_cue(&r2.pairs);
    let dp = session.density_plot(&r2.pairs);
    println!(
        "step 3: visual cues at t = {knee:.2}: {} triangles, clique density peaks at sizes {:?}",
        cue.total_triangles,
        dp.peaks()
    );
    let guided = guided_start.elapsed().as_secs_f64();

    // --- The brute-force alternative -------------------------------------
    println!(
        "\nbrute force: computing pair counts at every threshold 0.0, 0.1, … 1.0 from scratch…"
    );
    let brute_start = Instant::now();
    for k in 0..=10 {
        let _ = apss(&dataset.records, dataset.measure, k as f64 / 10.0, &cfg);
    }
    let brute = brute_start.elapsed().as_secs_f64();

    println!(
        "\nguided: {guided:.2}s for 2 probes | brute force: {brute:.2}s for 11 probes | saved {:.0}%",
        100.0 * (1.0 - guided / brute)
    );

    // Render the final cumulative curve as ASCII for the terminal.
    let curve = session.curve().expect("probes ran");
    println!("\ncumulative APSS graph (log-ish view):");
    let logs: Vec<f64> = curve.expected.iter().map(|&e| (e + 1.0).log10()).collect();
    print!(
        "{}",
        plot::ascii_chart(&curve.thresholds, &[("log10(pairs)", &logs)], 60, 12)
    );
}
