//! Per-node top-K graph formation (§2.5's future-work direction, built):
//! nearest-neighbor and reverse-nearest-neighbor queries over BayesLSH,
//! plus the kth-similarity distribution that guides global-threshold
//! selection for indexing.
//!
//! ```sh
//! cargo run --release --example nearest_neighbors
//! ```

use plasma_hd::core::apss::ApssConfig;
use plasma_hd::core::topk::KnnGraph;
use plasma_hd::data::datasets::catalog;
use plasma_hd::graph::measures::{components, triangles};

fn main() {
    let dataset = catalog::wine_like(42);
    let cfg = ApssConfig {
        exact_on_accept: true,
        ..ApssConfig::default()
    };

    let k = 6;
    let knn = KnnGraph::build(&dataset.records, dataset.measure, k, 0.1, &cfg);
    println!(
        "built top-{k} graph over {} records (BayesLSH-filtered)",
        knn.len()
    );

    // NN query.
    let probe = 0u32;
    println!("\nnearest neighbors of record {probe}:");
    for &(u, s) in knn.nearest(probe) {
        println!("  record {u}: similarity {s:.3}");
    }

    // Reverse-NN query: who considers record 0 a close neighbor?
    println!(
        "reverse nearest neighbors of record {probe}: {:?}",
        knn.reverse_nearest(probe)
    );

    // The kth-similarity distribution tells you which *global* threshold
    // approximates this KNN graph — §2.5's indexing guidance.
    let kths: Vec<f64> = (0..knn.len() as u32)
        .filter_map(|v| knn.kth_similarity(v))
        .collect();
    println!(
        "\nkth-neighbor similarity: median {:.3}, p10 {:.3}, p90 {:.3}",
        plasma_hd::data::stats::median(&kths).unwrap_or(f64::NAN),
        plasma_hd::data::stats::percentile(&kths, 0.1).unwrap_or(f64::NAN),
        plasma_hd::data::stats::percentile(&kths, 0.9).unwrap_or(f64::NAN),
    );
    println!("→ a global threshold near the median reproduces this connectivity");

    // The KNN graph feeds the same measure suite as threshold graphs.
    let g = knn.to_graph();
    println!(
        "\nKNN graph: {} edges, {} components, {} triangles",
        g.m(),
        components::count_components(&g),
        triangles::count_triangles(&g)
    );
}
