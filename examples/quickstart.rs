//! Quickstart: probe a dataset's similarity structure in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plasma_hd::core::apss::ApssConfig;
use plasma_hd::core::session::Session;
use plasma_hd::data::datasets::catalog;

fn main() {
    // 1. Get a dataset. The catalog ships seeded synthetic stand-ins for
    //    the paper's evaluation data; `wine_like` matches UCI wine's shape
    //    (178 records × 13 attributes, 3 classes).
    let dataset = catalog::wine_like(42);
    println!(
        "dataset: {} ({} records, {} dims, measure {})",
        dataset.name,
        dataset.len(),
        dataset.dim,
        dataset.measure.name()
    );

    // 2. Open an interactive session and probe at a similarity threshold.
    let mut session = Session::new(&dataset, ApssConfig::default());
    let report = session.probe(0.8);
    println!(
        "probe(0.8): {} similar pairs in {:.1} ms ({} candidates, {} pruned early)",
        report.pairs.len(),
        report.seconds * 1e3,
        report.candidates,
        report.pruned
    );

    // 3. The probe estimated the whole threshold spectrum, not just 0.8 —
    //    that is the Cumulative APSS Graph.
    println!("\ncumulative APSS estimates (pairs with similarity ≥ t):");
    for (k, &t) in report.curve.thresholds.iter().enumerate() {
        if k % 3 == 0 {
            println!(
                "  t = {t:.2}: {:8.0} ± {:.0}",
                report.curve.expected[k], report.curve.std_dev[k]
            );
        }
    }

    // 4. Let the system suggest where to look next (the curve's knee)...
    let next = session.suggest_next_threshold().expect("curve exists");
    println!("\nsuggested next threshold (knee): {next:.2}");

    // 5. ...probe there — cheap, thanks to the knowledge cache — and read
    //    the clusterability cues.
    let report2 = session.probe(next);
    let cue = session.triangle_cue(&report2.pairs);
    println!(
        "probe({next:.2}): {} pairs in {:.1} ms ({} answered from cache)",
        report2.pairs.len(),
        report2.seconds * 1e3,
        report2.cache_hits
    );
    println!(
        "triangles: {}, vertices in ≥1 triangle: {:.0}%",
        cue.total_triangles,
        100.0 * plasma_hd::core::cues::clusterability(&cue)
    );
}
