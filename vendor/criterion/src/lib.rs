//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build container cannot reach crates.io, so `cargo bench` runs
//! against this small harness instead: same macro surface
//! (`criterion_group!` / `criterion_main!`), same group/bencher calls,
//! real warm-up + iteration-count calibration, and median/mean/throughput
//! reporting to stdout. It does not do statistical regression analysis or
//! HTML reports.
//!
//! Benchmarks can also be filtered by substring: `cargo bench -- sketch`
//! runs only benchmark ids containing `sketch`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The harness entry point; holds measurement settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies CLI args (`cargo bench -- <filter>`); used by
    /// `criterion_main!`.
    pub fn configure_from_args(mut self) -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" || arg == "--test" || arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
        }
        self.filter = filter;
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let settings = self.clone();
        run_one(&settings, &id, None, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing throughput/settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks one routine.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_id());
        let mut settings = self.criterion.clone();
        if let Some(n) = self.sample_size {
            settings.sample_size = n;
        }
        run_one(&settings, &full_id, self.throughput, &mut f);
        self
    }

    /// Benchmarks one routine with an input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is incremental; this is a no-op hook).
    pub fn finish(self) {}
}

/// Hands the routine to the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink preventing the optimizer from deleting a result.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F>(settings: &Criterion, id: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &settings.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    // Warm up and calibrate the per-sample iteration count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < settings.warm_up_time {
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
    }
    let per_sample = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let iters = (per_sample / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        b.iters = iters;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    let max = samples[samples.len() - 1];

    let thrpt = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}/s", si(n as f64 / median, "elem")),
        Throughput::Bytes(n) => format!("  thrpt: {}/s", si(n as f64 / median, "B")),
    });
    println!(
        "{id:<56} time: [{} {} {}]  mean: {}{}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        fmt_time(mean),
        thrpt.unwrap_or_default(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("minhash", 64).into_id(), "minhash/64");
        assert_eq!(BenchmarkId::from_parameter(8000).into_id(), "8000");
    }

    #[test]
    fn harness_times_a_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        let mut ran = false;
        g.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }
}
