//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build container cannot reach crates.io, so the property tests run
//! against this miniature implementation: seeded random generation through
//! the [`Strategy`] trait, the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, and the `collection::{vec, btree_set}` strategies.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking** — a failing case reports its inputs via the assert
//!   message but is not minimized.
//! * **Deterministic seeding** — each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the shim trims to keep the
        // suite quick while preserving coverage breadth.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Sizes accepted by the collection strategies: an exact `usize` or a
/// `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy yielding `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy yielding `BTreeSet`s of values from `element`. When the
    /// element domain is too small to reach the drawn size, the set is
    /// returned at the size the domain supports (mirroring real
    /// proptest's bounded retries).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(10) + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Derives a stable RNG seed from a test's module path and name.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the seeded RNG a property test runs with (used by the
/// [`proptest!`] expansion so test crates need no direct `rand`
/// dependency).
pub fn rng_for(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Everything a `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::rng_for(seed);
                for _case in 0..config.cases {
                    // No shrinking: a failing case panics directly; the
                    // name-derived seed makes the failure reproducible.
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn btree_set_is_deduped(s in crate::collection::btree_set(0u32..4, 0..10)) {
            prop_assert!(s.len() <= 4);
        }
    }
}
