//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build container has no access to crates.io, so this crate provides
//! the pieces the sources reference — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — with identical call-site syntax. `StdRng` here is
//! xoshiro256++ seeded through SplitMix64: deterministic, fast, and easily
//! good enough for the statistical tolerances the test-suite asserts.
//! Replacing this shim with the real crate is a workspace-manifest change;
//! no call site needs to move.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore`'s output
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval (the shim's
/// `SampleUniform`). Single blanket `SampleRange` impls below keep type
/// inference identical to the real crate: `gen_range(1000..2000)` unifies
/// the literal with the expected output type.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`, or `[low, high]` when `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        T::sample_in(rng, start, end, true)
    }
}

/// Maps a raw 64-bit draw onto `[0, span)` via 128-bit multiply-shift.
#[inline]
fn bounded(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
                } else {
                    low.wrapping_add(bounded(rng.next_u64(), span) as $t)
                }
            }
        }
    )*};
}

impl_int_uniform!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                  i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seeding.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate, but a
    /// high-quality non-cryptographic PRNG with the same construction
    /// surface (`SeedableRng::seed_from_u64`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix of any seed
            // never yields four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let neg = rng.gen_range(-5i32..-1);
            assert!((-5..-1).contains(&neg));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let expect = n / 10;
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket count {c} too far from {expect}"
            );
        }
    }
}
