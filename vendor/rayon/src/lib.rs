//! Offline shim for the subset of the `rayon` API this workspace uses.
//!
//! crates.io is unreachable from the build container, so this crate
//! provides real data parallelism through `std::thread::scope` behind
//! rayon-shaped call sites: [`join`], [`scope`], [`current_num_threads`],
//! and chunked parallel slice iteration
//! ([`slice::ParallelSlice::par_chunks`] /
//! [`slice::ParallelSliceMut::par_chunks_mut`]).
//!
//! Unlike real rayon there is no work-stealing pool: each chunk gets one
//! scoped OS thread. Callers are expected to size chunks so the chunk
//! count is within a small factor of [`current_num_threads`] — which is
//! exactly how the PLASMA-HD engine shards its kernels (`ceil(len /
//! threads)` chunks). The API is rayon-shaped but not a strict subset:
//! `enumerate_for_each` and the joinable scope spawns have no direct
//! real-rayon equivalent, so swapping in the real crate needs mechanical
//! call-site rewrites (`.enumerate().for_each()`, channel collection)
//! alongside the workspace-manifest change.

/// Number of hardware threads available to the process.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: joined task panicked");
        (ra, rb)
    })
}

/// Creates a scope in which tasks can be spawned; all tasks complete
/// before `scope` returns. Thin wrapper over [`std::thread::scope`].
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
{
    std::thread::scope(f)
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Runs `f(index, item)` for every item, one scoped thread per item
/// beyond the first (which runs on the caller's thread).
fn run_indexed<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    match n {
        0 => Vec::new(),
        1 => {
            let mut items = items;
            vec![f(0, items.pop().expect("one item"))]
        }
        _ => std::thread::scope(|s| {
            let mut iter = items.into_iter();
            let first = iter.next().expect("n >= 2");
            let handles: Vec<_> = iter
                .enumerate()
                .map(|(k, item)| s.spawn(move || f(k + 1, item)))
                .collect();
            let mut out = Vec::with_capacity(n);
            out.push(f(0, first));
            for h in handles {
                out.push(h.join().expect("rayon shim: chunk task panicked"));
            }
            out
        }),
    }
}

/// Chunked parallel iteration over slices.
pub mod slice {
    use super::run_indexed;

    /// `par_chunks` for shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Splits the slice into chunks of at most `chunk_size` items,
        /// processed in parallel (one thread per chunk).
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks {
                chunks: self.chunks(chunk_size).collect(),
            }
        }
    }

    /// Parallel iterator over shared chunks.
    pub struct ParChunks<'a, T> {
        chunks: Vec<&'a [T]>,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Number of chunks.
        pub fn len(&self) -> usize {
            self.chunks.len()
        }

        /// True when the source slice was empty.
        pub fn is_empty(&self) -> bool {
            self.chunks.is_empty()
        }

        /// Maps every chunk in parallel; results keep chunk order. Eager,
        /// unlike real rayon — `collect` on the result is a no-op adapter.
        pub fn map<R, F>(self, f: F) -> ParResults<R>
        where
            R: Send,
            F: Fn(&'a [T]) -> R + Sync,
        {
            ParResults {
                results: run_indexed(self.chunks, &|_, c| f(c)),
            }
        }

        /// Runs `f(chunk_index, chunk)` for every chunk in parallel.
        pub fn enumerate_for_each<F>(self, f: F)
        where
            F: Fn(usize, &'a [T]) + Sync,
        {
            run_indexed(self.chunks, &|k, c| f(k, c));
        }
    }

    /// `par_chunks_mut` for mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits the slice into disjoint mutable chunks of at most
        /// `chunk_size` items, processed in parallel (one thread per
        /// chunk).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                chunks: self.chunks_mut(chunk_size).collect(),
            }
        }
    }

    /// Parallel iterator over disjoint mutable chunks.
    pub struct ParChunksMut<'a, T> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Number of chunks.
        pub fn len(&self) -> usize {
            self.chunks.len()
        }

        /// True when the source slice was empty.
        pub fn is_empty(&self) -> bool {
            self.chunks.is_empty()
        }

        /// Runs `f` on every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            run_indexed(self.chunks, &|_, c| f(c));
        }

        /// Runs `f(chunk_index, chunk)` for every chunk in parallel.
        pub fn enumerate_for_each<F>(self, f: F)
        where
            F: Fn(usize, &mut [T]) + Sync,
        {
            run_indexed(self.chunks, &|k, c| f(k, c));
        }
    }

    /// Ordered results of a parallel map.
    pub struct ParResults<R> {
        results: Vec<R>,
    }

    impl<R> ParResults<R> {
        /// Collects the (already computed) results, preserving chunk order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            self.results.into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn par_chunks_map_preserves_order() {
        let data: Vec<u64> = (0..1000).collect();
        let sums: Vec<u64> = data.par_chunks(97).map(|c| c.iter().sum()).collect();
        let seq: Vec<u64> = data.chunks(97).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, seq);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_slices() {
        let mut data = vec![0u64; 100];
        data.par_chunks_mut(17).enumerate_for_each(|k, chunk| {
            for v in chunk.iter_mut() {
                *v = k as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 17) as u64);
        }
    }

    #[test]
    fn par_chunks_runs_every_chunk_once() {
        let data = vec![1u64; 256];
        let total = AtomicU64::new(0);
        data.par_chunks(10).enumerate_for_each(|_, c| {
            total.fetch_add(c.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn empty_slices_are_fine() {
        let data: Vec<u32> = Vec::new();
        let out: Vec<u32> = data.par_chunks(8).map(|c| c.len() as u32).collect();
        assert!(out.is_empty());
    }
}
